package dsu

import "repro/internal/exec"

// Backend is the common operation surface of *DSU and *Sharded: point
// operations, batch operations, and quiescent-state inspection. Code
// written against Backend runs unchanged over the flat and sharded
// structures — the batch path (UniteAll and friends), the stream front
// (NewStream), and the filter options all route any Backend through the
// same internal execution seam, which is also where the adaptive
// compaction policy lives, so every path behaves identically on either
// structure.
//
// The interface is closed (an unexported method): its contracts — batch ≡
// blocking partitions, adaptive ≡ fixed partitions, filter soundness — are
// proved against the two implementations in this package.
type Backend interface {
	// N returns the number of elements.
	N() int
	// Find returns the representative of x's set at the linearization
	// point (representatives change as sets merge; prefer SameSet).
	Find(x uint32) uint32
	// SameSet reports whether x and y are in the same set, under the
	// implementation's query contract (exact and linearizable on *DSU;
	// true-is-definite on *Sharded).
	SameSet(x, y uint32) bool
	// Unite merges the sets containing x and y, reporting whether this
	// call performed the merge.
	Unite(x, y uint32) bool
	// UniteAll merges across every edge of the batch and returns the
	// implementation's merge count (see each type's documentation).
	UniteAll(edges []Edge, opts ...BatchOption) int
	// UniteAllCounted is UniteAll with work accounting into st.
	UniteAllCounted(edges []Edge, st *Stats, opts ...BatchOption) int
	// SameSetAll answers pairs[i] into element i of the returned slice.
	SameSetAll(pairs []Edge, opts ...BatchOption) []bool
	// SameSetAllCounted is SameSetAll with work accounting into st.
	SameSetAllCounted(pairs []Edge, st *Stats, opts ...BatchOption) []bool
	// Sets returns the number of sets; call at quiescence for exactness.
	Sets() int
	// CanonicalLabels returns the min-element labelling of the partition;
	// call at quiescence.
	CanonicalLabels() []uint32
	// Components materializes the partition as sorted element sets ordered
	// by their minima; call at quiescence.
	Components() [][]uint32
	// Snapshot returns a single-array copy of the forest: the flat
	// structure's parent array, or the sharded structure's flattened view
	// (each element pointing directly at its global representative — see
	// Sharded.Snapshot). Call at quiescence.
	Snapshot() []uint32
	// ID returns x's position in the structure's random linking order (the
	// bridge-level order on Sharded), fixed at construction.
	ID(x uint32) uint32

	// executor is the internal execution seam every batch, stream, and
	// filter path drives: one funnel per structure, shared by blocking and
	// streamed batches so the adaptive policy trains on all of them.
	executor() *exec.Executor
	// universe is the structure's anonymous Universe: the tenant-API layer
	// (request/response DTOs) the batch and stream veneers route through.
	universe() *Universe
}

// ConcurrentBackend is the second capability of the execution seam: a
// Backend whose entire operation surface — point operations AND batch
// calls — is safe from any number of goroutines with no quiescence
// requirement. On a plain Backend, batch calls serialize mutations behind
// the engine's batch barrier (one batch at a time owns the structure;
// callers queue); on a ConcurrentBackend, overlap is the contract: any
// number of UniteAll/SameSetAll calls, stream batches, and point
// operations may run simultaneously on one structure, and the summed
// merge count across overlapping mutation batches is exact for the
// combined edge set. Layers that hold concurrency back to protect a plain
// Backend — the stream dispatcher, the server's per-tenant in-flight
// budget — detect this capability and let requests run truly
// concurrently instead.
//
// Like Backend, the interface is closed: the no-quiescence contract is
// proved against this package's implementation (*LockFree) by the
// conformance and linearizability suites.
type ConcurrentBackend interface {
	Backend
	// concurrentOK marks the capability; the contract is behavioral
	// (no-quiescence safety of the full surface), not an extra method set.
	concurrentOK()
}

// StreamBackend is the former name of Backend, kept for callers that
// predate the unified execution layer.
type StreamBackend = Backend

var (
	_ Backend           = (*DSU)(nil)
	_ Backend           = (*Sharded)(nil)
	_ ConcurrentBackend = (*LockFree)(nil)
)
