package dsu

import (
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/pipeline"
)

// Metrics is the package's instrumentation registry: one of these owns
// the metric families every instrumented universe feeds — per-tenant
// batch counters, latency histograms, CAS-retry and adaptive-variant
// series, stream pipeline gauges — and writes them as a Prometheus text
// exposition (it is an http.Handler, mountable as /metrics).
//
// Attach one to a Registry with WithMetrics, or to a hand-built universe
// with Universe.Instrument; instrumentation rides the execution seam, so
// every path into a tenant's structure — blocking batch calls, streams,
// remote RPCs — feeds the same series without the caller doing anything.
// Without a Metrics attached nothing is recorded and the batch hot path
// pays one nil check (and zero allocations) — the disabled mode the root
// BenchmarkMetricsOverhead pins down.
//
// # Series catalog
//
// Per tenant (label "tenant"; batch series split by "op" = unite|query):
//
//	dsu_batches_total{tenant,op}            executed batch calls
//	dsu_batch_edges_total{tenant,op}        batch elements before filtering
//	dsu_find_steps_total{tenant,op}         find-loop iterations, all phases
//	dsu_batch_seconds{tenant,op}            end-to-end batch latency histogram
//	dsu_merged_edges_total{tenant}          edges that performed a merge
//	dsu_filtered_edges_total{tenant}        edges dropped by filter passes
//	dsu_screen_find_steps_total{tenant}     ConnectedFilter screen find work
//	dsu_cas_retries_total{tenant}           lock-free root-link CAS retries
//	dsu_find_variant_total{tenant,find}     query batches by resolved variant
//	dsu_tenant_seq{tenant}                  applied-batch sequence (gauge)
//	dsu_streams_active{tenant}              open streams (gauge)
//	dsu_stream_inflight_batches{tenant}     sealed batches past accumulators (gauge)
//	dsu_stream_executing_batches{tenant}    batches inside UniteAll (gauge)
//	dsu_stream_recycled_buffers_total{tenant} buffers reused through free lists
//
// The batch counters are exactly the exec.Result accounting every call
// already returns: a scrape's per-tenant totals equal the sum of the
// BatchReply values handed to that tenant's callers.
type Metrics struct {
	reg *metrics.Registry

	batches     *metrics.CounterVec
	edges       *metrics.CounterVec
	findSteps   *metrics.CounterVec
	latency     *metrics.HistogramVec
	merged      *metrics.CounterVec
	filtered    *metrics.CounterVec
	screenFinds *metrics.CounterVec
	casRetries  *metrics.CounterVec
	picks       *metrics.CounterVec
	seq         *metrics.GaugeVec

	streamsActive   *metrics.GaugeVec
	streamInFlight  *metrics.GaugeVec
	streamExecuting *metrics.GaugeVec
	streamRecycled  *metrics.CounterVec
}

// NewMetrics returns a fresh instrumentation registry with the dsu
// family catalog registered.
func NewMetrics() *Metrics {
	reg := metrics.NewRegistry()
	return &Metrics{
		reg:         reg,
		batches:     reg.CounterVec("dsu_batches_total", "Batch calls executed, by tenant and operation kind.", "tenant", "op"),
		edges:       reg.CounterVec("dsu_batch_edges_total", "Batch elements received (edges or query pairs), before filter passes.", "tenant", "op"),
		findSteps:   reg.CounterVec("dsu_find_steps_total", "Find-loop iterations across every batch phase (workers, shards, bridge, re-anchoring, filters).", "tenant", "op"),
		latency:     reg.HistogramVec("dsu_batch_seconds", "End-to-end batch wall-clock latency in seconds, filter passes included.", nil, "tenant", "op"),
		merged:      reg.CounterVec("dsu_merged_edges_total", "Unite-batch edges that performed a merge.", "tenant"),
		filtered:    reg.CounterVec("dsu_filtered_edges_total", "Edges dropped before dispatch by Prefilter dedup or the ConnectedFilter screen.", "tenant"),
		screenFinds: reg.CounterVec("dsu_screen_find_steps_total", "Find-loop iterations spent in ConnectedFilter screen passes.", "tenant"),
		casRetries:  reg.CounterVec("dsu_cas_retries_total", "Root-link CAS attempts that lost a race and retried (lock-free backend contention).", "tenant"),
		picks:       reg.CounterVec("dsu_find_variant_total", "Query batches by the find variant that actually ran (the adaptive policy's picks).", "tenant", "find"),
		seq:         reg.GaugeVec("dsu_tenant_seq", "Applied-batch sequence number: the durable log position when persistence is on, a plain batch count otherwise. Compare across replicas.", "tenant"),

		streamsActive:   reg.GaugeVec("dsu_streams_active", "Open streams (ingestion pipelines).", "tenant"),
		streamInFlight:  reg.GaugeVec("dsu_stream_inflight_batches", "Sealed stream batches past the accumulator: queued, blocked, or executing.", "tenant"),
		streamExecuting: reg.GaugeVec("dsu_stream_executing_batches", "Stream batches currently inside UniteAll.", "tenant"),
		streamRecycled:  reg.CounterVec("dsu_stream_recycled_buffers_total", "Stream buffers reused through the pipeline free list.", "tenant"),
	}
}

// Registry returns the underlying instrumentation registry, for layers
// that register their own families onto the same exposition (the network
// front end's server series ride here).
func (m *Metrics) Registry() *metrics.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// WriteText writes the full exposition in Prometheus text format v0.0.4.
// Safe concurrently with all recording.
func (m *Metrics) WriteText(w io.Writer) error { return m.Registry().WriteText(w) }

// ServeHTTP makes Metrics an http.Handler: mount it as /metrics.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.TextContentType)
	_ = m.WriteText(w)
}

// instruments resolves the per-tenant executor bundle.
func (m *Metrics) instruments(tenant string) *exec.Instruments {
	if m == nil {
		return nil
	}
	ins := &exec.Instruments{
		Unite: exec.OpInstruments{
			Batches:   m.batches.With(tenant, "unite"),
			Edges:     m.edges.With(tenant, "unite"),
			FindSteps: m.findSteps.With(tenant, "unite"),
			Latency:   m.latency.With(tenant, "unite"),
		},
		Query: exec.OpInstruments{
			Batches:   m.batches.With(tenant, "query"),
			Edges:     m.edges.With(tenant, "query"),
			FindSteps: m.findSteps.With(tenant, "query"),
			Latency:   m.latency.With(tenant, "query"),
		},
		Merged:          m.merged.With(tenant),
		Filtered:        m.filtered.With(tenant),
		ScreenFindSteps: m.screenFinds.With(tenant),
		CASRetries:      m.casRetries.With(tenant),
		Seq:             m.seq.With(tenant),
	}
	for f := core.FindNaive; f <= core.FindCompress; f++ {
		ins.Picks[f] = m.picks.With(tenant, f.String())
	}
	return ins
}

// gauges resolves the per-tenant stream pipeline gauges.
func (m *Metrics) gauges(tenant string) pipeline.Gauges {
	if m == nil {
		return pipeline.Gauges{}
	}
	return pipeline.Gauges{
		Active:    m.streamsActive.With(tenant),
		InFlight:  m.streamInFlight.With(tenant),
		Executing: m.streamExecuting.With(tenant),
		Recycled:  m.streamRecycled.With(tenant),
	}
}

// Instrument attaches m's per-tenant series to the universe: every batch
// through the structure's execution seam — blocking, streamed, or remote
// — feeds them from here on, and streams opened via this universe feed
// the pipeline gauges. Call before the universe is shared (Registry
// universes built with WithMetrics are instrumented at Create, before
// they are visible). Instrumenting with a nil Metrics is a no-op.
func (u *Universe) Instrument(m *Metrics) {
	if m == nil {
		return
	}
	u.b.executor().Instrument(m.instruments(u.name))
	u.sg = m.gauges(u.name)
}

// TenantMetrics is one universe's accounting totals, read from the live
// instruments — the in-process face of the /metrics exposition, so
// embedders and benchmarks see exactly what a scraper would. The batch
// totals equal the summed exec.Result/BatchReply values returned to this
// tenant's callers since instrumentation.
type TenantMetrics struct {
	// Instrumented reports whether the universe has live instruments; when
	// false every other field is zero.
	Instrumented bool

	// UniteBatches/QueryBatches count executed batch calls; UniteEdges/
	// QueryPairs their elements (before filter passes).
	UniteBatches, QueryBatches int64
	UniteEdges, QueryPairs     int64
	// Merged counts edges that performed a merge; Filtered counts edges
	// dropped by filter passes.
	Merged, Filtered int64
	// FindSteps sums find-loop iterations across unite and query batches
	// (every phase); ScreenFindSteps is the ConnectedFilter screen's share.
	FindSteps, ScreenFindSteps int64
	// CASRetries counts lock-free root-link CAS retries.
	CASRetries int64
	// Seq is the applied-batch sequence gauge (Universe.Seq as last
	// published to the instruments).
	Seq int64
	// VariantPicks counts query batches by the find variant that ran.
	VariantPicks map[FindStrategy]int64
	// StreamsActive and StreamBatchesInFlight are the live pipeline
	// gauges for streams opened through this universe.
	StreamsActive, StreamBatchesInFlight int64
}

// Metrics returns the universe's live accounting snapshot. On an
// uninstrumented universe it returns the zero TenantMetrics (Instrumented
// false).
func (u *Universe) Metrics() TenantMetrics {
	ins := u.b.executor().Instruments()
	if ins == nil {
		return TenantMetrics{}
	}
	tm := TenantMetrics{
		Instrumented:          true,
		UniteBatches:          ins.Unite.Batches.Value(),
		QueryBatches:          ins.Query.Batches.Value(),
		UniteEdges:            ins.Unite.Edges.Value(),
		QueryPairs:            ins.Query.Edges.Value(),
		Merged:                ins.Merged.Value(),
		Filtered:              ins.Filtered.Value(),
		FindSteps:             ins.Unite.FindSteps.Value() + ins.Query.FindSteps.Value(),
		ScreenFindSteps:       ins.ScreenFindSteps.Value(),
		CASRetries:            ins.CASRetries.Value(),
		Seq:                   ins.Seq.Value(),
		VariantPicks:          make(map[FindStrategy]int64),
		StreamsActive:         u.sg.Active.Value(),
		StreamBatchesInFlight: u.sg.InFlight.Value(),
	}
	for f := core.FindNaive; f <= core.FindCompress; f++ {
		if v := ins.Picks[f].Value(); v > 0 {
			tm.VariantPicks[findStrategyOf(f)] = v
		}
	}
	return tm
}
