package dsu_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/dsu"
	"repro/internal/seqdsu"
)

// durBatches deterministically generates mutation batches over [0, n).
func durBatches(n, count, maxLen int, seed int64) [][]dsu.Edge {
	rng := rand.New(rand.NewSource(seed))
	batches := make([][]dsu.Edge, count)
	for i := range batches {
		b := make([]dsu.Edge, 1+rng.Intn(maxLen))
		for j := range b {
			b[j] = dsu.Edge{X: uint32(rng.Intn(n)), Y: uint32(rng.Intn(n))}
		}
		batches[i] = b
	}
	return batches
}

// oracleLabels replays batches through the sequential oracle and
// returns the canonical partition labels.
func oracleLabels(n int, batches [][]dsu.Edge) []uint32 {
	d := seqdsu.New(n, seqdsu.LinkRandom, seqdsu.CompactSplitting, 1)
	for _, b := range batches {
		for _, e := range b {
			d.Unite(e.X, e.Y)
		}
	}
	return d.CanonicalLabels()
}

func sameLabels(t *testing.T, what string, got, want []uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d labels, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: label[%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
}

func ingest(t *testing.T, u *dsu.Universe, batches [][]dsu.Edge) {
	t.Helper()
	for i, b := range batches {
		if _, err := u.UniteAll(dsu.UniteRequest{Edges: b}); err != nil {
			t.Fatalf("UniteAll #%d: %v", i, err)
		}
	}
}

// TestDurableRecoveryAcrossKinds: ingest, close, re-create → the
// recovered partition matches the sequential oracle and the sequence
// number survives, for every backend kind.
func TestDurableRecoveryAcrossKinds(t *testing.T) {
	const n = 400
	kinds := []struct {
		name string
		opts []dsu.Option
	}{
		{"flat", []dsu.Option{dsu.WithKind(dsu.KindFlat)}},
		{"sharded", []dsu.Option{dsu.WithKind(dsu.KindSharded), dsu.WithShards(3)}},
		{"lockfree", []dsu.Option{dsu.WithKind(dsu.KindLockFree)}},
	}
	for _, k := range kinds {
		k := k
		t.Run(k.name, func(t *testing.T) {
			dir := t.TempDir()
			batches := durBatches(n, 25, 12, 11)
			want := oracleLabels(n, batches)

			reg := dsu.NewRegistry(dsu.WithDurability(dir))
			u, err := reg.Create("t", n, k.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if !u.Durable() {
				t.Fatalf("tenant of a durable registry is not durable")
			}
			ingest(t, u, batches)
			if u.Seq() != uint64(len(batches)) {
				t.Fatalf("Seq = %d after %d batches", u.Seq(), len(batches))
			}
			sameLabels(t, "pre-close", u.CanonicalLabels(), want)
			if err := reg.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			reg2 := dsu.NewRegistry(dsu.WithDurability(dir))
			u2, err := reg2.Create("t", n, k.opts...)
			if err != nil {
				t.Fatalf("re-create: %v", err)
			}
			sameLabels(t, "recovered", u2.CanonicalLabels(), want)
			if u2.Seq() != uint64(len(batches)) {
				t.Fatalf("recovered Seq = %d, want %d", u2.Seq(), len(batches))
			}
			// Appends continue the numbering and remain durable.
			more := durBatches(n, 5, 8, 12)
			ingest(t, u2, more)
			if u2.Seq() != uint64(len(batches)+len(more)) {
				t.Fatalf("post-recovery Seq = %d", u2.Seq())
			}
			all := append(append([][]dsu.Edge{}, batches...), more...)
			sameLabels(t, "post-recovery", u2.CanonicalLabels(), oracleLabels(n, all))
			if err := reg2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDurableSnapshotPlusTail: a checkpoint mid-history must not change
// what recovery reconstructs — snapshot plus replayed tail ≡ the full
// history.
func TestDurableSnapshotPlusTail(t *testing.T) {
	const n = 300
	dir := t.TempDir()
	head := durBatches(n, 10, 10, 21)
	tail := durBatches(n, 7, 10, 22)
	all := append(append([][]dsu.Edge{}, head...), tail...)

	reg := dsu.NewRegistry(dsu.WithDurability(dir))
	u, err := reg.Create("t", n)
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, u, head)
	if err := u.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	ingest(t, u, tail)
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := dsu.NewRegistry(dsu.WithDurability(dir))
	u2, err := reg2.Create("t", n)
	if err != nil {
		t.Fatal(err)
	}
	sameLabels(t, "snapshot+tail", u2.CanonicalLabels(), oracleLabels(n, all))
	if u2.Seq() != uint64(len(all)) {
		t.Fatalf("Seq = %d, want %d", u2.Seq(), len(all))
	}
	reg2.Close()
}

// TestDurableTornLogRecovery cuts the tenant's log at many points and
// re-creates the tenant each time: recovery must come up with exactly
// the prefix of history the cut preserved (Seq says how much), matching
// the oracle's replay of that prefix — never an error, never a panic,
// never a partial batch.
func TestDurableTornLogRecovery(t *testing.T) {
	const n = 150
	dir := t.TempDir()
	batches := durBatches(n, 12, 6, 31)

	reg := dsu.NewRegistry(dsu.WithDurability(dir))
	u, err := reg.Create("t", n)
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, u, batches)
	if err := u.Checkpoint(); err != nil { // exercise snapshot-in-prefix recovery too
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "t.dsulog")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Cut at a spread of points across the whole file (every byte is the
	// wal package's own torture test; here we care about the dsu-level
	// recovery contract).
	for cut := len(data); cut > len(data)/2; cut -= 37 {
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, "t.dsulog"), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		reg2 := dsu.NewRegistry(dsu.WithDurability(cutDir))
		u2, err := reg2.Create("t", n)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		recovered := u2.Seq()
		if recovered > uint64(len(batches)) {
			t.Fatalf("cut %d: recovered %d of %d batches", cut, recovered, len(batches))
		}
		sameLabels(t, fmt.Sprintf("cut %d (seq %d)", cut, recovered),
			u2.CanonicalLabels(), oracleLabels(n, batches[:recovered]))
		reg2.Close()
	}
}

// TestCheckpointWhileUniting is the snapshot-at-quiescence race hammer
// (run under -race in CI): goroutines ingest while checkpoints fire.
// Every acked batch must survive recovery and the final partition must
// match the oracle — a snapshot taken mid-batch would break both.
func TestCheckpointWhileUniting(t *testing.T) {
	const n = 600
	for _, kind := range []dsu.Kind{dsu.KindFlat, dsu.KindLockFree} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			reg := dsu.NewRegistry(dsu.WithDurability(dir))
			u, err := reg.Create("t", n, dsu.WithKind(kind))
			if err != nil {
				t.Fatal(err)
			}

			const workers = 4
			const perWorker = 30
			var wg sync.WaitGroup
			var mu sync.Mutex
			var acked [][]dsu.Edge
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for _, b := range durBatches(n, perWorker, 9, int64(100+g)) {
						if _, err := u.UniteAll(dsu.UniteRequest{Edges: b}); err != nil {
							t.Errorf("UniteAll: %v", err)
							return
						}
						mu.Lock()
						acked = append(acked, b)
						mu.Unlock()
					}
				}(g)
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < 10; i++ {
					if err := u.Checkpoint(); err != nil {
						t.Errorf("Checkpoint: %v", err)
						return
					}
				}
			}()
			wg.Wait()
			<-done
			if t.Failed() {
				return
			}
			if u.Seq() != uint64(workers*perWorker) {
				t.Fatalf("Seq = %d, want %d", u.Seq(), workers*perWorker)
			}
			if err := reg.Close(); err != nil {
				t.Fatal(err)
			}

			// The partition is order-independent, so any interleaving of the
			// acked batches gives one answer — which recovery must reproduce.
			want := oracleLabels(n, acked)
			reg2 := dsu.NewRegistry(dsu.WithDurability(dir))
			u2, err := reg2.Create("t", n, dsu.WithKind(kind))
			if err != nil {
				t.Fatal(err)
			}
			sameLabels(t, "recovered", u2.CanonicalLabels(), want)
			reg2.Close()
		})
	}
}

// TestRewind materializes historical states and checks each against the
// oracle's replay of exactly that prefix.
func TestRewind(t *testing.T) {
	const n = 200
	dir := t.TempDir()
	batches := durBatches(n, 15, 8, 41)

	reg := dsu.NewRegistry(dsu.WithDurability(dir))
	u, err := reg.Create("t", n)
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, u, batches[:8])
	if err := u.Checkpoint(); err != nil { // a snapshot mid-history: rewinds past it must still work
		t.Fatal(err)
	}
	ingest(t, u, batches[8:])
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	for _, seq := range []uint64{0, 3, 8, 11, 15} {
		ru, err := reg.Rewind("t", seq)
		if err != nil {
			t.Fatalf("Rewind(%d): %v", seq, err)
		}
		if ru.Durable() {
			t.Fatalf("rewound universe is durable")
		}
		if ru.Seq() != seq {
			t.Fatalf("Rewind(%d).Seq() = %d", seq, ru.Seq())
		}
		if want := fmt.Sprintf("t@%d", seq); ru.Name() != want {
			t.Fatalf("rewound name %q, want %q", ru.Name(), want)
		}
		sameLabels(t, fmt.Sprintf("rewind %d", seq), ru.CanonicalLabels(), oracleLabels(n, batches[:seq]))
	}
	if _, err := reg.Rewind("t", 16); err == nil {
		t.Fatalf("Rewind past the log's end succeeded")
	}
	if _, err := reg.Rewind("missing", 0); err == nil {
		t.Fatalf("Rewind of an unknown tenant succeeded")
	}
}

// TestRestoreTenants: a fresh registry discovers and recovers every
// persisted tenant under its recorded configuration.
func TestRestoreTenants(t *testing.T) {
	const n = 128
	dir := t.TempDir()
	alpha := durBatches(n, 6, 6, 51)
	beta := durBatches(n, 9, 6, 52)

	reg := dsu.NewRegistry(dsu.WithDurability(dir))
	ua, err := reg.Create("alpha", n, dsu.WithKind(dsu.KindLockFree))
	if err != nil {
		t.Fatal(err)
	}
	ub, err := reg.Create("beta", n, dsu.WithShards(2), dsu.WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, ua, alpha)
	ingest(t, ub, beta)
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := dsu.NewRegistry(dsu.WithDurability(dir))
	names, err := reg2.RestoreTenants()
	if err != nil {
		t.Fatalf("RestoreTenants: %v", err)
	}
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("restored %v", names)
	}
	ua2, _ := reg2.Get("alpha")
	ub2, _ := reg2.Get("beta")
	if ua2.Kind() != "lockfree" {
		t.Fatalf("alpha restored as %s", ua2.Kind())
	}
	if ub2.Kind() != "sharded" || ub2.Shards() != 2 {
		t.Fatalf("beta restored as %s/%d shards", ub2.Kind(), ub2.Shards())
	}
	sameLabels(t, "alpha", ua2.CanonicalLabels(), oracleLabels(n, alpha))
	sameLabels(t, "beta", ub2.CanonicalLabels(), oracleLabels(n, beta))
	// Idempotent: a second call restores nothing new.
	names, err = reg2.RestoreTenants()
	if err != nil || len(names) != 0 {
		t.Fatalf("second RestoreTenants = %v, %v", names, err)
	}
	reg2.Close()

	// A non-durable registry has nothing to restore.
	if _, err := dsu.NewRegistry().RestoreTenants(); !errors.Is(err, dsu.ErrNotDurable) {
		t.Fatalf("RestoreTenants without durability = %v", err)
	}
}

// TestDurableStreamAndPointOps: edges through a stream and point Unites
// via the Universe are logged like batch calls.
func TestDurableStreamAndPointOps(t *testing.T) {
	const n = 256
	dir := t.TempDir()
	reg := dsu.NewRegistry(dsu.WithDurability(dir))
	u, err := reg.Create("t", n)
	if err != nil {
		t.Fatal(err)
	}
	var edges []dsu.Edge
	rng := rand.New(rand.NewSource(61))
	s := u.NewStream()
	for i := 0; i < 500; i++ {
		e := dsu.Edge{X: uint32(rng.Intn(n)), Y: uint32(rng.Intn(n))}
		edges = append(edges, e)
		s.Push(e)
	}
	s.Close()
	u.Unite(0, uint32(n-1)) // point unite on the tenant surface is logged too
	edges = append(edges, dsu.Edge{X: 0, Y: uint32(n - 1)})
	if u.Seq() == 0 {
		t.Fatalf("Seq still 0 after stream + point unite")
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := dsu.NewRegistry(dsu.WithDurability(dir))
	u2, err := reg2.Create("t", n)
	if err != nil {
		t.Fatal(err)
	}
	sameLabels(t, "stream+point", u2.CanonicalLabels(), oracleLabels(n, [][]dsu.Edge{edges}))
	reg2.Close()
}

// TestSeqWithoutDurability: the applied-batch sequence counts mutation
// batches even with no WAL, and surfaces in tenant metrics.
func TestSeqWithoutDurability(t *testing.T) {
	const n = 64
	m := dsu.NewMetrics()
	reg := dsu.NewRegistry(dsu.WithMetrics(m))
	u, err := reg.Create("t", n)
	if err != nil {
		t.Fatal(err)
	}
	if u.Durable() {
		t.Fatalf("plain tenant reports durable")
	}
	if err := u.Checkpoint(); !errors.Is(err, dsu.ErrNotDurable) {
		t.Fatalf("Checkpoint without durability = %v", err)
	}
	ingest(t, u, durBatches(n, 7, 4, 71))
	// Queries must not advance the sequence.
	if _, err := u.SameSetAll(dsu.QueryRequest{Pairs: []dsu.Edge{{X: 1, Y: 2}}}); err != nil {
		t.Fatal(err)
	}
	if u.Seq() != 7 {
		t.Fatalf("Seq = %d, want 7", u.Seq())
	}
	if tm := u.Metrics(); tm.Seq != 7 {
		t.Fatalf("metrics Seq = %d, want 7", tm.Seq)
	}
}

// TestDurableConfigMismatch: recovering under a different configuration
// must fail loudly, not replay wrong history.
func TestDurableConfigMismatch(t *testing.T) {
	const n = 64
	dir := t.TempDir()
	reg := dsu.NewRegistry(dsu.WithDurability(dir))
	u, err := reg.Create("t", n, dsu.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, u, durBatches(n, 2, 4, 81))
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := dsu.NewRegistry(dsu.WithDurability(dir))
	if _, err := reg2.Create("t", n, dsu.WithSeed(2)); err == nil {
		t.Fatalf("Create with a different seed over an existing log succeeded")
	}
	if _, err := reg2.Create("t", n+1, dsu.WithSeed(1)); err == nil {
		t.Fatalf("Create with a different n over an existing log succeeded")
	}
	// The failed creates must not have registered anything.
	if _, ok := reg2.Get("t"); ok {
		t.Fatalf("failed create registered the tenant")
	}
}

// TestMutationsFailAfterSeal: acked-means-logged in the negative — once
// the log is sealed (registry closed), mutations return errors instead
// of acknowledging unlogged work.
func TestMutationsFailAfterSeal(t *testing.T) {
	const n = 64
	reg := dsu.NewRegistry(dsu.WithDurability(t.TempDir()))
	u, err := reg.Create("t", n)
	if err != nil {
		t.Fatal(err)
	}
	ingest(t, u, durBatches(n, 2, 4, 91))
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := u.UniteAll(dsu.UniteRequest{Edges: []dsu.Edge{{X: 1, Y: 2}}}); err == nil {
		t.Fatalf("UniteAll after seal acked a batch")
	}
	// Queries still work: the structure is intact, only mutation is off.
	rep, err := u.SameSetAll(dsu.QueryRequest{Pairs: []dsu.Edge{{X: 1, Y: 2}}})
	if err != nil || len(rep.Answers) != 1 {
		t.Fatalf("query after seal: %v %v", rep, err)
	}
}

// TestDropSealsLog: dropping a durable tenant seals its log so a later
// Create recovers it.
func TestDropSealsLog(t *testing.T) {
	const n = 64
	dir := t.TempDir()
	reg := dsu.NewRegistry(dsu.WithDurability(dir))
	u, err := reg.Create("t", n)
	if err != nil {
		t.Fatal(err)
	}
	batches := durBatches(n, 4, 5, 101)
	ingest(t, u, batches)
	if !reg.Drop("t") {
		t.Fatalf("Drop reported missing")
	}
	u2, err := reg.Create("t", n)
	if err != nil {
		t.Fatalf("re-create after drop: %v", err)
	}
	sameLabels(t, "after drop", u2.CanonicalLabels(), oracleLabels(n, batches))
	if u2.Seq() != 4 {
		t.Fatalf("Seq = %d after drop/re-create", u2.Seq())
	}
	reg.Close()
}
