package dsu

import (
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/lockfree"
)

// LockFree is the paper's algorithm run as an actually-concurrent backend:
// a wait-free-find, lock-free-unite disjoint-set structure over a single
// atomic parent array (internal/lockfree), with the random linking order
// baked into the array layout at construction. It implements the full
// Backend surface, and more: it is the package's ConcurrentBackend — every
// operation, batches included, is safe from any number of goroutines with
// no quiescence requirement, and any number of batch calls may overlap on
// one structure. Where DSU's and Sharded's batches funnel through a
// serialize-then-parallelize engine pool (one batch owns the structure,
// workers claim spans), LockFree's batch workers apply edges directly
// through the point operations — nothing serializes against other batches,
// streams, or point callers, which is what lets the server run a tenant's
// in-flight requests truly concurrently instead of queueing them.
//
// The find family is restricted to what the concurrent algorithm defines:
// NoCompaction, OneTrySplitting, TwoTrySplitting (the default), or
// FindAuto over those. Halving, Compression, and WithEarlyTermination are
// core's ablation surface and are rejected at construction.
//
// Merged counts are exact even under overlap: every successful root link
// is counted by exactly one call, and the number of links needed to reach
// a partition is schedule-independent — so the sum of Merged across
// overlapping batches equals the sequential count for the combined edge
// set. Quiescent reads (Sets, CanonicalLabels, Components, Snapshot) keep
// their usual contract: exact once no Unites are in flight.
type LockFree struct {
	l *lockfree.DSU
	// x is the unified execution seam all batch, stream, and filter paths
	// route through (and, with FindAuto, the adaptive policy's home).
	x *exec.Executor
	// uni is the structure's anonymous Universe — the tenant-API layer the
	// batch and stream veneers phrase their calls through.
	uni *Universe
}

// NewLockFree returns a lock-free concurrent DSU over n singleton elements
// 0..n−1. It panics if n is out of range or the options are inconsistent:
// the find strategy must be NoCompaction, OneTrySplitting,
// TwoTrySplitting, or FindAuto, and early termination is not supported
// (its interleavings optimize a sequential two-find pattern the direct
// concurrent batch path does not use). WithShards is ignored, as in New.
func NewLockFree(n int, opts ...Option) *LockFree {
	cfg := defaultConfig()
	for _, o := range opts {
		o.apply(&cfg)
	}
	l := lockfree.New(n, core.Config{
		Find:             coreFind(cfg.find),
		EarlyTermination: cfg.early,
		Seed:             cfg.seed,
	})
	d := &LockFree{l: l, x: exec.NewExecutor(l, cfg.find == FindAuto)}
	d.uni = &Universe{b: d}
	return d
}

// executor exposes the execution seam to the batch, stream, and filter
// paths (Backend).
func (d *LockFree) executor() *exec.Executor { return d.x }

// universe exposes the anonymous Universe the veneers route through
// (Backend).
func (d *LockFree) universe() *Universe { return d.uni }

// concurrentOK marks the structure as a ConcurrentBackend: the whole
// operation surface, batches included, carries the no-quiescence contract.
func (d *LockFree) concurrentOK() {}

// N returns the number of elements.
func (d *LockFree) N() int { return d.l.N() }

// Find returns the root (canonical representative at the linearization
// point) of the set containing x. Roots change as sets merge; SameSet is
// the stable way to compare membership.
func (d *LockFree) Find(x uint32) uint32 { return d.l.Find(x) }

// FindCounted is Find with work accounting into st.
func (d *LockFree) FindCounted(x uint32, st *Stats) uint32 { return d.l.FindCounted(x, st) }

// SameSet reports whether x and y are in the same set. The result is
// linearizable: it was exact at an instant during the call.
func (d *LockFree) SameSet(x, y uint32) bool { return d.l.SameSet(x, y) }

// SameSetCounted is SameSet with work accounting into st.
func (d *LockFree) SameSetCounted(x, y uint32, st *Stats) bool {
	return d.l.SameSetCounted(x, y, st)
}

// Unite merges the sets containing x and y. It reports whether this call
// performed the merge, and is lock-free: a failed root-link attempt means
// a concurrent link succeeded.
func (d *LockFree) Unite(x, y uint32) bool { return d.l.Unite(x, y) }

// UniteCounted is Unite with work accounting into st.
func (d *LockFree) UniteCounted(x, y uint32, st *Stats) bool { return d.l.UniteCounted(x, y, st) }

// UniteAll merges across every edge of the batch, workers applying edges
// directly through the lock-free point operations, and returns the number
// of edges that performed a merge. Unlike the flat and sharded batches it
// holds no barrier: any number of UniteAll calls may overlap with each
// other and with every other operation, and the summed merge count across
// overlapping calls is exact for the combined edge set.
func (d *LockFree) UniteAll(edges []Edge, opts ...BatchOption) int {
	return int(uniteVeneer(d.uni, edges, opts).Merged)
}

// UniteAllCounted is UniteAll with work accounting into st.
func (d *LockFree) UniteAllCounted(edges []Edge, st *Stats, opts ...BatchOption) int {
	rep := uniteVeneer(d.uni, edges, opts)
	st.Add(rep.Stats)
	return int(rep.Merged)
}

// SameSetAll answers pairs[i] into element i of the returned slice. Each
// answer is linearizable; with no concurrent Unites the whole slice is
// exact for the current partition.
func (d *LockFree) SameSetAll(pairs []Edge, opts ...BatchOption) []bool {
	return queryVeneer(d.uni, pairs, opts).Answers
}

// SameSetAllCounted is SameSetAll with work accounting into st.
func (d *LockFree) SameSetAllCounted(pairs []Edge, st *Stats, opts ...BatchOption) []bool {
	rep := queryVeneer(d.uni, pairs, opts)
	st.Add(rep.Stats)
	return rep.Answers
}

// Sets returns the number of sets. Call at quiescence for an exact answer.
func (d *LockFree) Sets() int { return d.l.Sets() }

// CanonicalLabels returns, for every element, the minimum element of its
// set. Call at quiescence.
func (d *LockFree) CanonicalLabels() []uint32 { return d.l.CanonicalLabels() }

// Components materializes the partition as sorted element sets ordered by
// their minima. Call at quiescence.
func (d *LockFree) Components() [][]uint32 { return componentsFromLabels(d.l.CanonicalLabels()) }

// Snapshot returns a copy of the parent forest translated to element
// space (roots satisfy parent[x] == x, the flat structure's convention).
// Call at quiescence.
func (d *LockFree) Snapshot() []uint32 { return d.l.Snapshot() }

// ID returns x's position in the random linking order (fixed at
// NewLockFree) — here also x's physical slot in the parent array.
func (d *LockFree) ID(x uint32) uint32 { return d.l.ID(x) }
