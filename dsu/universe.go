package dsu

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/pipeline"
	"repro/internal/tracespan"
)

// A Universe is the tenant-scoped view of one disjoint-set structure: a
// name, a Backend (flat or sharded, fixed or adaptive — whatever the
// construction options selected), and the request/response surface remote
// and in-process callers share. The DTO methods (UniteAll, SameSetAll)
// take plain-data requests, validate them against the universe — element
// range, per-batch find overrides — and answer with a BatchReply carrying
// the execution layer's full accounting; the wire protocol
// (internal/wire) carries exactly these types, so a batch means the same
// thing whether it arrived over a socket or from the goroutine next door.
// The package's own batch veneers (DSU.UniteAll and friends, Stream) route
// through this layer too, which is what keeps the two worlds identical.
//
// A Universe is a stateless wrapper: all structure state lives in the
// Backend, every method is safe for concurrent use under the backend's own
// contract, and any number of Universe values may wrap one backend.
type Universe struct {
	name string
	b    Backend
	// sg holds the tenant's stream pipeline gauges, resolved by
	// Instrument; the zero value records nothing. Streams opened through
	// this universe feed them (the executor-side instruments live on the
	// backend's execution seam and need no per-universe state).
	sg pipeline.Gauges
	// rec is the tenant's trace recorder, resolved by EnableTracing; nil
	// (the default) disables tracing — every batch path nil-checks once
	// and records nothing.
	rec *tracespan.Recorder
	// dur is the tenant's persistence handle (log writer + checkpoint
	// routine), nil for the non-durable universes every registry without
	// WithDurability creates. See durability.go.
	dur *durableState
}

// NewUniverse wraps an existing structure as a named universe — for
// serving a structure built by hand, outside a Registry. The name is
// advisory (Registry enforces uniqueness, this does not).
func NewUniverse(name string, b Backend) *Universe { return &Universe{name: name, b: b} }

// Name returns the universe's tenant name ("" for the anonymous universe
// every structure carries internally).
func (u *Universe) Name() string { return u.name }

// Backend returns the wrapped structure.
func (u *Universe) Backend() Backend { return u.b }

// Kind reports the structure kind: "flat" for *DSU, "sharded" for
// *Sharded, "lockfree" for *LockFree.
func (u *Universe) Kind() string {
	switch u.b.(type) {
	case *Sharded:
		return KindSharded.String()
	case *LockFree:
		return KindLockFree.String()
	default:
		return KindFlat.String()
	}
}

// Concurrent reports whether the universe's structure is a
// ConcurrentBackend — its whole operation surface, batches included, safe
// under full concurrency with no quiescence requirement. Layers that
// queue requests to protect a plain backend (the server's per-tenant
// in-flight budget, the stream dispatcher) consult this to let a tenant's
// requests run truly concurrently instead.
func (u *Universe) Concurrent() bool {
	_, ok := u.b.(ConcurrentBackend)
	return ok
}

// Shards returns the shard count of a sharded universe, 0 for a flat one.
func (u *Universe) Shards() int {
	if s, ok := u.b.(*Sharded); ok {
		return s.Shards()
	}
	return 0
}

// Adaptive reports whether the universe runs the adaptive compaction
// policy (WithAdaptiveFind).
func (u *Universe) Adaptive() bool { return u.b.executor().Adaptive() }

// N returns the number of elements.
func (u *Universe) N() int { return u.b.N() }

// Find, SameSet, and Unite are the point operations, delegated under the
// backend's own concurrency contract. On a durable universe, Unite
// routes through the execution seam as a one-edge batch so it is logged
// before it is applied, like every other mutation on the tenant surface.
func (u *Universe) Find(x uint32) uint32     { return u.b.Find(x) }
func (u *Universe) SameSet(x, y uint32) bool { return u.b.SameSet(x, y) }
func (u *Universe) Unite(x, y uint32) bool {
	if u.dur != nil {
		return u.durableUnite(x, y)
	}
	return u.b.Unite(x, y)
}

// Sets, CanonicalLabels, Components, Snapshot, and ID are the quiescent
// read surface, identical across backend kinds (the parity the Backend
// interface now guarantees).
func (u *Universe) Sets() int                 { return u.b.Sets() }
func (u *Universe) CanonicalLabels() []uint32 { return u.b.CanonicalLabels() }
func (u *Universe) Components() [][]uint32    { return u.b.Components() }
func (u *Universe) Snapshot() []uint32        { return u.b.Snapshot() }
func (u *Universe) ID(x uint32) uint32        { return u.b.ID(x) }

// BatchOptions is the plain-data mirror of the per-batch option vocabulary
// (WithWorkers, WithGrain, WithPrefilter, WithConnectedFilter) plus an
// optional per-batch find-variant override — the form a batch's tuning
// takes inside a request DTO, where a []BatchOption cannot travel. The
// zero value selects every default.
type BatchOptions struct {
	// Workers is the batch worker-pool size; values ≤ 0 select
	// runtime.GOMAXPROCS(0).
	Workers int `json:"workers,omitempty"`
	// Grain is the span-claim granularity; values ≤ 0 select the engine
	// default (1024).
	Grain int `json:"grain,omitempty"`
	// Prefilter runs the self-loop/duplicate dedup pass before dispatch
	// (WithPrefilter).
	Prefilter bool `json:"prefilter,omitempty"`
	// ConnectedFilter screens the batch through SameSet before dispatch
	// (WithConnectedFilter).
	ConnectedFilter bool `json:"connected_filter,omitempty"`
	// Find, when non-zero, overrides the structure's find variant for this
	// batch. FindAuto is a structure-level policy, not a per-batch value,
	// and is rejected; Halving and Compression are rejected on structures
	// built WithEarlyTermination (the combination is undefined, exactly as
	// in New).
	Find FindStrategy `json:"find,omitempty"`
}

// Options converts o back into the option vocabulary, for configuring
// in-process batch calls or stream defaults from a wire-shaped
// description. The Find override has no []BatchOption form — it is
// resolved by the Universe DTO methods — and is ignored here.
func (o BatchOptions) Options() []BatchOption {
	var opts []BatchOption
	if o.Workers > 0 {
		opts = append(opts, WithWorkers(o.Workers))
	}
	if o.Grain > 0 {
		opts = append(opts, WithGrain(o.Grain))
	}
	if o.Prefilter {
		opts = append(opts, WithPrefilter())
	}
	if o.ConnectedFilter {
		opts = append(opts, WithConnectedFilter())
	}
	return opts
}

// batchOptionsOf flattens a resolved option list into the DTO form — how
// the in-process veneers phrase their calls in the Universe layer's
// vocabulary.
func batchOptionsOf(opts []BatchOption) BatchOptions {
	var cfg exec.Config
	for _, o := range opts {
		o.applyBatch(&cfg)
	}
	return BatchOptions{
		Workers:         cfg.Workers,
		Grain:           cfg.Grain,
		Prefilter:       cfg.Prefilter,
		ConnectedFilter: cfg.ConnectedFilter,
	}
}

// UniteRequest asks a universe to merge across a batch of edges.
type UniteRequest struct {
	Edges   []Edge       `json:"edges"`
	Options BatchOptions `json:"options"`
}

// QueryRequest asks a universe to answer a batch of connectivity queries.
type QueryRequest struct {
	Pairs   []Edge       `json:"pairs"`
	Options BatchOptions `json:"options"`
}

// BatchReply reports one executed batch — the response DTO shared by
// in-process callers and the wire. Merged, Filtered, Find, Elapsed, and
// Stats carry the execution layer's unified accounting (exec.Result);
// Answers is filled by query batches only, indexed like the request's
// Pairs.
type BatchReply struct {
	// Answers is nil on unite replies; on query replies it is non-nil and
	// indexed like the request's Pairs (no omitempty: a zero-pair query's
	// empty slice must survive the JSON encoding like it does the binary).
	Answers  []bool       `json:"answers"`
	Merged   int64        `json:"merged"`
	Filtered int          `json:"filtered,omitempty"`
	Find     FindStrategy `json:"find,omitempty"`
	// CASRetries carries exec.Result.CASRetries: root-link CAS attempts
	// that lost a race and retried — the lock-free backend's contention
	// metric (always zero for the engine-pooled kinds). Remote callers of
	// a lock-free tenant read their batches' contention here.
	CASRetries int64         `json:"cas_retries,omitempty"`
	Elapsed    time.Duration `json:"elapsed,omitempty"`
	Stats      Stats         `json:"stats"`
}

// findStrategyOf maps a resolved core variant back to the public
// vocabulary (the reverse of coreFind; FindAuto never appears — replies
// report the variant a batch actually ran).
func findStrategyOf(f core.Find) FindStrategy {
	switch f {
	case core.FindNaive:
		return NoCompaction
	case core.FindOneTry:
		return OneTrySplitting
	case core.FindTwoTry:
		return TwoTrySplitting
	case core.FindHalving:
		return Halving
	case core.FindCompress:
		return Compression
	default:
		return 0
	}
}

// replyOf assembles the DTO from one execution record.
func replyOf(answers []bool, res exec.Result) BatchReply {
	return BatchReply{
		Answers:    answers,
		Merged:     res.Merged,
		Filtered:   res.Filtered,
		Find:       findStrategyOf(res.Find),
		CASRetries: res.CASRetries,
		Elapsed:    res.Elapsed,
		Stats:      res.Stats(),
	}
}

// MaxBatchWorkers caps the worker pool one batch request may ask for. The
// DTO layer is the untrusted boundary — a remote frame must not be able
// to spawn an unbounded number of goroutines — and no legitimate batch
// benefits from more workers than this (the engine additionally clamps to
// the edge count). The network front end applies the same cap to its
// stream tuning parameters.
const MaxBatchWorkers = 1024

// resolve turns request options into the execution configuration,
// validating the find override against the structure's configuration.
func (u *Universe) resolve(o BatchOptions) (exec.Config, error) {
	if o.Workers > MaxBatchWorkers {
		o.Workers = MaxBatchWorkers
	}
	x := u.b.executor()
	cfg := exec.Config{
		Workers:         o.Workers,
		Grain:           o.Grain,
		Seed:            x.Seed(),
		Prefilter:       o.Prefilter,
		ConnectedFilter: o.ConnectedFilter,
	}
	switch o.Find {
	case 0:
		// Structure default (or the adaptive policy's pick, on query batches).
	case FindAuto:
		return cfg, errors.New("dsu: FindAuto is a structure-level policy (WithAdaptiveFind), not a per-batch override")
	case NoCompaction, OneTrySplitting, TwoTrySplitting:
		cfg.Find = coreFind(o.Find)
	case Halving, Compression:
		if _, ok := u.b.(*LockFree); ok {
			return cfg, fmt.Errorf("dsu: find override %v is undefined on the lock-free backend (splitting family only)", o.Find)
		}
		if x.Backend().CoreConfig().EarlyTermination {
			return cfg, fmt.Errorf("dsu: find override %v is undefined on a structure built with early termination", o.Find)
		}
		cfg.Find = coreFind(o.Find)
	default:
		return cfg, fmt.Errorf("dsu: unknown find strategy %d", int(o.Find))
	}
	return cfg, nil
}

// validatePairs bounds-checks a batch against the universe. Remote callers
// are untrusted; a single predictable compare per endpoint here is what
// lets the wait-free core keep its unchecked array indexing.
func validatePairs(what string, pairs []Edge, n int) error {
	limit := uint32(n)
	for i, e := range pairs {
		if e.X >= limit || e.Y >= limit {
			return fmt.Errorf("dsu: %s %d names (%d,%d), outside the %d-element universe", what, i, e.X, e.Y, n)
		}
	}
	return nil
}

// Validate bounds-checks a batch against the universe without running it —
// the pre-flight check the network front end runs before pushing remote
// edges into a stream, where execution is deferred past the moment a
// per-request error could still be returned.
func (u *Universe) Validate(pairs []Edge) error {
	return validatePairs("edge", pairs, u.b.N())
}

// ReplyOf converts one executed stream batch's record into the reply DTO —
// how the network front end phrases stream completions in the same
// vocabulary as RPC replies. (Abandoned batches have no execution record;
// their Err travels as a protocol error instead.)
func ReplyOf(r BatchResult) BatchReply {
	return BatchReply{
		Merged:     r.Merged,
		Filtered:   r.Filtered,
		Find:       findStrategyOf(r.Find),
		CASRetries: r.CASRetries,
		Elapsed:    r.Elapsed,
		Stats:      r.Stats(),
	}
}

// UniteAll merges across every edge of the request's batch and reports the
// run. It is the mutation entry point of the tenant API: requests are
// validated (element range, find override) and then driven through the
// structure's execution seam — the same funnel DSU.UniteAll,
// Sharded.UniteAll, and every Stream batch use, so remote and in-process
// batches are indistinguishable to the structure and to the adaptive
// policy. The reply's Merged follows the backend's own counting contract
// (exact sequential count on flat, structural two-level count on sharded).
func (u *Universe) UniteAll(req UniteRequest) (BatchReply, error) {
	cfg, err := u.resolve(req.Options)
	if err != nil {
		return BatchReply{}, err
	}
	if err := validatePairs("edge", req.Edges, u.b.N()); err != nil {
		return BatchReply{}, err
	}
	tr := u.rec.Start(tracespan.OpUnite, tracespan.SourceBlocking)
	cfg.Trace = tr
	res := u.b.executor().UniteAll(req.Edges, cfg)
	if res.Err != nil {
		// Durability refused the batch: it was not applied, and no reply
		// may acknowledge it.
		u.rec.Finish(tr)
		return BatchReply{}, res.Err
	}
	rep := replyOf(nil, res)
	if a := tr.Attrs(tracespan.Root); a != nil {
		a.Edges = int64(len(req.Edges))
		a.Merged = rep.Merged
	}
	u.rec.Finish(tr)
	return rep, nil
}

// SameSetAll answers the request's pairs into the reply's Answers slice
// (Answers[i] answers Pairs[i]) — the query entry point of the tenant API,
// validated and funneled exactly as UniteAll. Under WithAdaptiveFind this
// is the path the adaptive policy may downgrade; the reply's Find reports
// the variant that actually ran.
func (u *Universe) SameSetAll(req QueryRequest) (BatchReply, error) {
	cfg, err := u.resolve(req.Options)
	if err != nil {
		return BatchReply{}, err
	}
	if err := validatePairs("pair", req.Pairs, u.b.N()); err != nil {
		return BatchReply{}, err
	}
	tr := u.rec.Start(tracespan.OpQuery, tracespan.SourceBlocking)
	cfg.Trace = tr
	out, res := u.b.executor().SameSetAll(req.Pairs, cfg)
	rep := replyOf(out, res)
	if a := tr.Attrs(tracespan.Root); a != nil {
		a.Edges = int64(len(req.Pairs))
	}
	u.rec.Finish(tr)
	return rep, nil
}

// ParseFindStrategy maps a wire- or flag-friendly name to its
// FindStrategy, case-insensitively: "naive" (or "nocompaction"), "onetry",
// "twotry", "halving", "compress" (or "compression"), and "auto" (or
// "adaptive") for the adaptive policy. The empty string and "default"
// return 0 — the caller's default. Each strategy's String() round-trips.
func ParseFindStrategy(s string) (FindStrategy, error) {
	switch strings.ToLower(s) {
	case "", "default":
		return 0, nil
	case "naive", "nocompaction":
		return NoCompaction, nil
	case "onetry", "one-try":
		return OneTrySplitting, nil
	case "twotry", "two-try":
		return TwoTrySplitting, nil
	case "halving":
		return Halving, nil
	case "compress", "compression":
		return Compression, nil
	case "auto", "adaptive":
		return FindAuto, nil
	default:
		return 0, fmt.Errorf("dsu: unknown find strategy %q", s)
	}
}

// ParseKind maps a wire- or flag-friendly name to its structure Kind,
// case-insensitively: "flat", "sharded" (or "shard"), and "lockfree" (or
// "lock-free", "concurrent"). The empty string and "default" return 0 —
// unset, letting shard-count resolution choose. Each kind's String()
// round-trips.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "", "default":
		return 0, nil
	case "flat":
		return KindFlat, nil
	case "sharded", "shard":
		return KindSharded, nil
	case "lockfree", "lock-free", "concurrent":
		return KindLockFree, nil
	default:
		return 0, fmt.Errorf("dsu: unknown structure kind %q", s)
	}
}

// Registry is the tenant directory: it creates and looks up named
// universes, each wrapping its own independent structure. All methods are
// safe for concurrent use. Tenant isolation is structural — universes
// share nothing but the process — so no operation on one tenant can
// observe or disturb another's partition.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*Universe
	// metrics, when non-nil, instruments every universe Create builds
	// (WithMetrics): per-tenant series resolved under the tenant's name.
	metrics *Metrics
	// tracing, when non-nil, traces every universe Create builds
	// (WithTracing): per-tenant trace recorders resolved under the
	// tenant's name.
	tracing *Tracing
	// dur, when non-nil, makes every universe Create builds durable
	// (WithDurability): per-tenant write-ahead logs in dur.dir, recovery
	// on Create, checkpoints per dur's policy.
	dur *durabilityConfig
}

// RegistryOption configures NewRegistry.
type RegistryOption interface {
	applyRegistry(*Registry)
}

type registryOptionFunc func(*Registry)

func (f registryOptionFunc) applyRegistry(r *Registry) { f(r) }

// WithMetrics attaches an instrumentation registry: every universe this
// Registry creates is instrumented at Create, before it becomes visible,
// so its whole lifetime of batches lands in m's per-tenant series. A nil
// m leaves the registry uninstrumented.
func WithMetrics(m *Metrics) RegistryOption {
	return registryOptionFunc(func(r *Registry) { r.metrics = m })
}

// NewRegistry returns an empty registry.
func NewRegistry(opts ...RegistryOption) *Registry {
	r := &Registry{m: make(map[string]*Universe)}
	for _, o := range opts {
		o.applyRegistry(r)
	}
	return r
}

// Metrics returns the attached instrumentation registry, nil when the
// registry is uninstrumented.
func (r *Registry) Metrics() *Metrics { return r.metrics }

// Tracing returns the attached tracing registry, nil when the registry
// is untraced.
func (r *Registry) Tracing() *Tracing { return r.tracing }

// Create builds a new universe under name and registers it. The structure
// kind is chosen by the option vocabulary: an explicit WithKind wins;
// otherwise a positive WithShards selects a sharded structure, and flat
// is the default. KindSharded without a shard count uses one shard per
// available CPU; KindLockFree rejects WithShards (the lock-free structure
// is one array), WithEarlyTermination, and the Halving/Compression find
// strategies (the concurrent algorithm defines the splitting family
// only). WithFind/WithAdaptiveFind and WithSeed apply as in the
// constructors. It returns an error — never panics — on a taken name, an
// out-of-range n, or an inconsistent option set, so remote tenant
// creation cannot crash a server. The structure is allocated under the
// registry lock, which keeps the check-then-insert atomic but blocks
// lookups of other tenants for the allocation's duration — for a very
// large n that is not brief, so callers exposed to untrusted sizes should
// cap n (the network front end's MaxN does).
func (r *Registry) Create(name string, n int, opts ...Option) (*Universe, error) {
	if name == "" {
		return nil, errors.New("dsu: universe name must be non-empty")
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o.apply(&cfg)
	}
	if n < 0 || int64(n) > math.MaxInt32 {
		return nil, fmt.Errorf("dsu: universe size %d out of range [0, 2³¹−1]", n)
	}
	switch cfg.find {
	case NoCompaction, OneTrySplitting, TwoTrySplitting, Halving, Compression, FindAuto:
	default:
		return nil, fmt.Errorf("dsu: unknown find strategy %d", int(cfg.find))
	}
	if cfg.early && (cfg.find == Halving || cfg.find == Compression) {
		return nil, fmt.Errorf("dsu: early termination is undefined with %v", cfg.find)
	}
	kind := cfg.kind
	if kind == 0 {
		if cfg.shards > 0 {
			kind = KindSharded
		} else {
			kind = KindFlat
		}
	}
	switch kind {
	case KindFlat, KindSharded:
	case KindLockFree:
		if cfg.shards > 0 {
			return nil, errors.New("dsu: the lock-free kind does not shard (one atomic parent array)")
		}
		if cfg.early {
			return nil, errors.New("dsu: early termination is not supported by the lock-free backend")
		}
		if cfg.find == Halving || cfg.find == Compression {
			return nil, fmt.Errorf("dsu: find strategy %v is undefined on the lock-free backend (splitting family only)", cfg.find)
		}
	default:
		return nil, fmt.Errorf("dsu: unknown structure kind %d", int(kind))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[name]; ok {
		return nil, fmt.Errorf("dsu: universe %q already exists", name)
	}
	var b Backend
	switch kind {
	case KindSharded:
		// Resolve the shard count before the structure (and before the
		// durable log header records it): a GOMAXPROCS default frozen here
		// is what lets the log recover identically on a different machine.
		if cfg.shards <= 0 {
			cfg.shards = runtime.GOMAXPROCS(0)
		}
		b = NewSharded(n, cfg.shards, opts...)
	case KindLockFree:
		b = NewLockFree(n, opts...)
	default:
		b = New(n, opts...)
	}
	u := &Universe{name: name, b: b}
	if r.dur != nil {
		// Open (or recover) the tenant's log before the universe is
		// instrumented or published: recovery replay is not re-logged and
		// never pollutes tenant metrics, and a failed recovery registers
		// nothing.
		if err := r.openDurable(u, n, kind, cfg); err != nil {
			return nil, err
		}
	}
	u.Instrument(r.metrics)    // no-op when uninstrumented
	u.EnableTracing(r.tracing) // no-op (nil recorder) when untraced
	if u.dur != nil {
		// Publish the recovered position to the just-attached gauge.
		b.executor().SetSeq(b.executor().Seq())
	}
	r.m[name] = u
	return u, nil
}

// Get returns the universe registered under name.
func (r *Registry) Get(name string) (*Universe, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u, ok := r.m[name]
	return u, ok
}

// Drop unregisters name, reporting whether it existed. The universe's
// structure stays valid for holders of the pointer (in-flight batches and
// streams complete); it is simply no longer reachable by name. A durable
// tenant's log is sealed (its file remains, and a later Create under the
// same name recovers it), so in-flight mutations race the seal exactly
// as they race a process shutdown: logged ones survive, refused ones
// were never acknowledged.
func (r *Registry) Drop(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, ok := r.m[name]
	delete(r.m, name)
	if ok {
		r.tracing.drop(name)
		if u.dur != nil {
			u.dur.w.Close()
		}
	}
	return ok
}

// Names returns the registered tenant names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered universes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}
