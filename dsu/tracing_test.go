package dsu

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// spanNames collects the stage names of one exported trace.
func spanNames(tr BatchTrace) map[string]int {
	names := make(map[string]int)
	for _, s := range tr.Spans {
		names[s.Name]++
	}
	return names
}

// TestBlockingTraceTree pins the blocking veneer's span taxonomy: a
// traced universe records one trace per batch call with a root span
// named after the op, an execute span under the root, and per-worker
// spans under execute.
func TestBlockingTraceTree(t *testing.T) {
	r := NewRegistry(WithTracing(NewTracing()))
	u, err := r.Create("t", 1000)
	if err != nil {
		t.Fatal(err)
	}
	edges := make([]Edge, 100)
	for i := range edges {
		edges[i] = Edge{X: uint32(i), Y: uint32(i + 1)}
	}
	if _, err := u.UniteAll(UniteRequest{Edges: edges, Options: BatchOptions{Workers: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := u.SameSetAll(QueryRequest{Pairs: edges[:10]}); err != nil {
		t.Fatal(err)
	}
	traces := u.Traces()
	if len(traces) != 2 {
		t.Fatalf("Traces() = %d entries, want 2", len(traces))
	}
	// Newest first: query then unite.
	q, un := traces[0], traces[1]
	if q.Op != "query" || un.Op != "unite" {
		t.Fatalf("ops = %q, %q; want query, unite", q.Op, un.Op)
	}
	for _, tr := range traces {
		if tr.Source != "blocking" {
			t.Errorf("trace %s source = %q, want blocking", tr.TraceID, tr.Source)
		}
		if len(tr.Spans) == 0 || tr.Spans[0].Name != tr.Op {
			t.Fatalf("trace %s root span missing or misnamed", tr.TraceID)
		}
		names := spanNames(tr)
		if names["execute"] != 1 {
			t.Errorf("trace %s execute spans = %d, want 1", tr.TraceID, names["execute"])
		}
		// Connectivity: every span's parent must be 0 (root) or a valid
		// earlier span — one connected tree.
		for i, s := range tr.Spans {
			if i == 0 {
				if s.Parent != 0 {
					t.Errorf("root span has parent %d", s.Parent)
				}
				continue
			}
			if s.Parent == 0 || int(s.Parent) > len(tr.Spans) {
				t.Errorf("span %d (%s) parent %d out of tree", s.ID, s.Name, s.Parent)
			}
		}
	}
	if names := spanNames(un); names["worker"] == 0 {
		t.Errorf("unite trace has no worker spans: %v", names)
	}
	if un.Spans[0].Attrs.Edges != 100 {
		t.Errorf("unite root Edges attr = %d, want 100", un.Spans[0].Attrs.Edges)
	}
}

// TestStreamTrace pins the stream path: batches dispatched by a traced
// universe's stream record seal, queue-wait, dispatch, and execute
// spans, and PushLinked's context is adopted (first link wins).
func TestStreamTrace(t *testing.T) {
	r := NewRegistry(WithTracing(NewTracing()))
	u, err := r.Create("s", 1000)
	if err != nil {
		t.Fatal(err)
	}
	s := u.NewStream(WithBufferSize(4))
	link := TraceContext{Trace: 0xfeedface, Span: 7}
	if err := s.PushLinked(link, Edge{X: 0, Y: 1}, Edge{X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}
	// A later link into the same batch loses.
	if err := s.PushLinked(TraceContext{Trace: 0xdead, Span: 9}, Edge{X: 2, Y: 3}, Edge{X: 3, Y: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	traces := u.Traces()
	if len(traces) != 1 {
		t.Fatalf("Traces() = %d entries, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Source != "stream" || tr.Op != "unite" {
		t.Fatalf("trace op/source = %q/%q, want unite/stream", tr.Op, tr.Source)
	}
	if tr.TraceID != "00000000feedface" || !tr.Remote || tr.ParentSpan != 7 {
		t.Fatalf("adoption: id=%s remote=%v parent=%d, want 00000000feedface/true/7",
			tr.TraceID, tr.Remote, tr.ParentSpan)
	}
	names := spanNames(tr)
	for _, want := range []string{"seal", "queue-wait", "dispatch", "execute"} {
		if names[want] != 1 {
			t.Errorf("span %q count = %d, want 1 (have %v)", want, names[want], names)
		}
	}
	// Nesting: dispatch must contain execute's interval.
	var dispatch, execute SpanTrace
	for _, s := range tr.Spans {
		switch s.Name {
		case "dispatch":
			dispatch = s
		case "execute":
			execute = s
		}
	}
	if execute.Start < dispatch.Start || execute.Start+execute.Duration > dispatch.Start+dispatch.Duration {
		t.Errorf("execute [%d,+%d] not nested in dispatch [%d,+%d]",
			execute.Start, execute.Duration, dispatch.Start, dispatch.Duration)
	}
	if tr.Spans[0].Attrs.Edges != 4 {
		t.Errorf("root Edges attr = %d, want 4", tr.Spans[0].Attrs.Edges)
	}
}

// TestFlightRecorderPromotion pins the slow-trace path: with a 1ns
// threshold every batch is promoted; SlowTraces retains them.
func TestFlightRecorderPromotion(t *testing.T) {
	r := NewRegistry(WithTracing(NewTracing(WithSlowThreshold(1), WithTraceRing(4), WithRetainedSlow(8))))
	u, err := r.Create("slow", 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := u.UniteAll(UniteRequest{Edges: []Edge{{X: 0, Y: 1}}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(u.Traces()); got != 4 {
		t.Errorf("recent ring = %d traces, want 4 (ring capacity)", got)
	}
	slow := u.SlowTraces()
	if len(slow) != 6 {
		t.Fatalf("flight recorder = %d traces, want all 6", len(slow))
	}
	for _, tr := range slow {
		if !tr.Slow {
			t.Errorf("retained trace %s not marked slow", tr.TraceID)
		}
	}
}

// TestUntracedUniverse pins the disabled mode: no Tracing attached means
// nil snapshots and no recording anywhere.
func TestUntracedUniverse(t *testing.T) {
	d := New(100)
	u := NewUniverse("", d)
	if _, err := u.UniteAll(UniteRequest{Edges: []Edge{{X: 0, Y: 1}}}); err != nil {
		t.Fatal(err)
	}
	if u.Traces() != nil || u.SlowTraces() != nil || u.TraceRecorder() != nil {
		t.Error("untraced universe leaked trace state")
	}
	s := u.NewStream(WithBufferSize(2))
	if err := s.PushLinked(TraceContext{Trace: 1}, Edge{X: 0, Y: 1}, Edge{X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if u.Traces() != nil {
		t.Error("untraced stream recorded a trace")
	}
}

// TestTracingHandler pins the /debug/traces exposition: valid JSON, one
// entry per tenant sorted by name, tenant and slow filters honored.
func TestTracingHandler(t *testing.T) {
	tr := NewTracing(WithSlowThreshold(time.Hour))
	r := NewRegistry(WithTracing(tr))
	for _, name := range []string{"b-tenant", "a-tenant"} {
		u, err := r.Create(name, 100)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := u.UniteAll(UniteRequest{Edges: []Edge{{X: 0, Y: 1}}}); err != nil {
			t.Fatal(err)
		}
	}
	rec := httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var got []TenantTraces
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(got) != 2 || got[0].Tenant != "a-tenant" || got[1].Tenant != "b-tenant" {
		t.Fatalf("tenants = %+v, want a-tenant then b-tenant", got)
	}
	for _, tt := range got {
		if tt.Started != 1 || len(tt.Recent) != 1 {
			t.Errorf("tenant %s: started=%d recent=%d, want 1/1", tt.Tenant, tt.Started, len(tt.Recent))
		}
		if len(tt.Slowest) != 0 {
			t.Errorf("tenant %s: %d slow traces under 1h threshold", tt.Tenant, len(tt.Slowest))
		}
	}
	rec = httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?tenant=a-tenant", nil))
	got = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Tenant != "a-tenant" {
		t.Fatalf("tenant filter: %+v", got)
	}
	rec = httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?slow=1", nil))
	got = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	for _, tt := range got {
		if tt.Recent != nil {
			t.Errorf("slow filter left recent ring on %s", tt.Tenant)
		}
	}
	// Drop removes the tenant's recorder from the exposition.
	r.Drop("a-tenant")
	if snap := tr.Snapshot(); len(snap) != 1 || snap[0].Tenant != "b-tenant" {
		t.Errorf("after Drop: %+v", snap)
	}
}

// TestTracedDTOMethods pins UniteAllTraced/SameSetAllTraced: execution
// records into the caller's trace, and validation errors record nothing.
func TestTracedDTOMethods(t *testing.T) {
	tracing := NewTracing()
	d := New(100)
	u := NewUniverse("", d)
	u.EnableTracing(tracing)
	rec := u.TraceRecorder()
	tr := rec.Start("unite", "rpc")
	if _, err := u.UniteAllTraced(UniteRequest{Edges: []Edge{{X: 0, Y: 1}}}, tr); err != nil {
		t.Fatal(err)
	}
	rec.Finish(tr)
	traces := u.Traces()
	if len(traces) != 1 {
		t.Fatalf("Traces() = %d, want 1", len(traces))
	}
	if names := spanNames(traces[0]); names["execute"] != 1 {
		t.Errorf("traced DTO call recorded no execute span: %v", names)
	}
	// Validation failure: the error reports before execution.
	tr2 := rec.Start("unite", "rpc")
	if _, err := u.UniteAllTraced(UniteRequest{Edges: []Edge{{X: 999, Y: 1000}}}, tr2); err == nil {
		t.Fatal("out-of-range edge not rejected")
	}
	if len(u.Traces()) != 1 {
		t.Error("failed validation leaked a recorded trace")
	}
}
