package dsu

import (
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/shard"
)

// Sharded is a disjoint-set structure whose element universe 0..n−1 is
// partitioned into contiguous blocks across independent per-shard engines,
// with a bridge forest reconciling cross-shard unions. It exposes the same
// operations as DSU and always produces the same partition, but its batch
// path scales past one parent array's cache footprint: intra-shard edges
// run against shard-sized working sets (all shards in parallel) and only
// the cross-shard spill list touches the shared bridge.
//
// Contract (DESIGN.md, "Sharding & reconciliation", has the full story):
// mutations (Unite, UniteAll) serialize on an internal lock and are
// linearizable in that order — each UniteAll is internally parallel.
// Queries (Find, SameSet, SameSetAll) never block and may run concurrently
// with anything: a true SameSet answer is definite; a false answer is
// exact at mutation-quiescence, but concurrent with a mutation it may
// transiently miss unions — the in-flight ones, and, while the mutation is
// re-anchoring a merged set's representatives, even cross-shard unions
// committed by earlier calls. Unite's boolean is exact. UniteAll's count
// tallies structural merges across both levels; it can exceed the flat
// DSU's count when cross-shard paths have already connected two
// locally-separate sets, while the resulting partition is identical.
type Sharded struct {
	s *shard.DSU
	// x is the unified execution seam all batch, stream, and filter paths
	// route through, carrying the structure seed into batch scheduling and
	// (with FindAuto) the adaptive policy's estimator.
	x *exec.Executor
	// uni is the structure's anonymous Universe — the tenant-API layer the
	// batch and stream veneers phrase their calls through.
	uni *Universe
}

// NewSharded returns a sharded DSU over n elements in the given number of
// shards. It panics if n is out of range (as New) or the shard count is
// below one; a count exceeding n is clamped so no shard is empty. All New
// options apply — WithFind and WithEarlyTermination select the variant run
// by every shard and the bridge, WithSeed makes construction and batch
// scheduling reproducible, and a positive WithShards overrides the
// positional count (useful when one option list carries a full
// configuration through plumbing).
func NewSharded(n, shards int, opts ...Option) *Sharded {
	cfg := defaultConfig()
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.shards > 0 {
		shards = cfg.shards
	}
	if shards < 1 {
		panic("dsu: NewSharded needs at least one shard")
	}
	s := shard.New(n, shards, core.Config{
		Find:             coreFind(cfg.find),
		EarlyTermination: cfg.early,
		Seed:             cfg.seed,
	})
	d := &Sharded{s: s, x: exec.NewExecutor(s, cfg.find == FindAuto)}
	d.uni = &Universe{b: d}
	return d
}

// executor exposes the execution seam to the batch, stream, and filter
// paths (Backend).
func (d *Sharded) executor() *exec.Executor { return d.x }

// universe exposes the anonymous Universe the veneers route through
// (Backend).
func (d *Sharded) universe() *Universe { return d.uni }

// N returns the number of elements.
func (d *Sharded) N() int { return d.s.N() }

// Shards returns the resolved shard count (which may be below the request;
// see NewSharded).
func (d *Sharded) Shards() int { return d.s.Shards() }

// ShardOf returns the shard owning element x, for routing-aware callers.
func (d *Sharded) ShardOf(x uint32) int { return d.s.Partition().ShardOf(x) }

// Find returns x's global representative — the bridge-level root of its
// shard-local root. Representatives change as sets merge; SameSet is the
// stable way to compare membership.
func (d *Sharded) Find(x uint32) uint32 { return d.s.Find(x) }

// SameSet reports whether x and y are in the same set, per the query
// contract in the type documentation.
func (d *Sharded) SameSet(x, y uint32) bool { return d.s.SameSet(x, y) }

// Unite merges the sets containing x and y, reporting whether this call
// performed the merge. The boolean is exact: mutations are serialized, so
// the internal membership pre-check sees a mutation-quiescent structure.
func (d *Sharded) Unite(x, y uint32) bool { return d.s.Unite(x, y) }

// UniteAll merges across every edge of the batch: intra-shard edges are
// routed to their shard's own engine run, all shards driven in parallel,
// and cross-shard edges spill into the reconciliation pass. The resulting
// partition is exactly a flat DSU's partition for the same edges. The
// returned count tallies merges across both levels (see the type docs).
// Batch options apply per call: WithWorkers is the total budget split
// across the active shards, WithGrain and WithPrefilter pass through.
func (d *Sharded) UniteAll(edges []Edge, opts ...BatchOption) int {
	return int(uniteVeneer(d.uni, edges, opts).Merged)
}

// UniteAllCounted is UniteAll, accumulating the summed work counters of
// every phase — per-shard runs, re-anchoring, and the bridge run — into st.
func (d *Sharded) UniteAllCounted(edges []Edge, st *Stats, opts ...BatchOption) int {
	rep := uniteVeneer(d.uni, edges, opts)
	st.Add(rep.Stats)
	return int(rep.Merged)
}

// SameSetAll answers pairs[i] into element i of the returned slice through
// the two-level structure, using the same worker pool as UniteAll. Each
// answer carries the query contract of SameSet. Under WithAdaptiveFind the
// adaptive policy applies here exactly as on the flat DSU — every level
// (shard locals and the bridge) runs the downgraded variant.
func (d *Sharded) SameSetAll(pairs []Edge, opts ...BatchOption) []bool {
	return queryVeneer(d.uni, pairs, opts).Answers
}

// SameSetAllCounted is SameSetAll with work accounting into st.
func (d *Sharded) SameSetAllCounted(pairs []Edge, st *Stats, opts ...BatchOption) []bool {
	rep := queryVeneer(d.uni, pairs, opts)
	st.Add(rep.Stats)
	return rep.Answers
}

// Sets returns the number of sets. Call at quiescence for an exact answer.
func (d *Sharded) Sets() int { return d.s.Sets() }

// CanonicalLabels returns, for every element, the minimum element of its
// set — the same canonical naming DSU.CanonicalLabels produces. Call at
// quiescence.
func (d *Sharded) CanonicalLabels() []uint32 { return d.s.CanonicalLabels() }

// Components materializes the partition as a slice of sets, each sorted
// ascending, ordered by their minimum elements — exactly DSU.Components'
// shape, so code written against Backend reads either structure kind. Call
// at quiescence.
func (d *Sharded) Components() [][]uint32 { return componentsFromLabels(d.s.CanonicalLabels()) }

// Snapshot returns the flattened global forest: element x's entry is its
// global representative, so every tree has depth at most one and roots
// satisfy parent[x] == x, the flat structure's root convention. The
// two-level structure has no single parent array to copy — local forests
// and the bridge interleave, and stitching them into one pointer array
// could cycle through dethroned roots — so the flattened view is the
// honest single-array picture of the partition. Call at quiescence for an
// exact picture; mid-mutation the entries may mix epochs but the call
// always terminates (every internal root chase runs under a hard hop
// bound).
func (d *Sharded) Snapshot() []uint32 { return d.s.Snapshot() }

// ID returns x's position in the bridge level's random linking order,
// fixed at construction — the globally meaningful analogue of DSU.ID (each
// shard's local forest draws its own order; the bridge order spans the
// whole universe). Exposed for forest analysis; not needed for ordinary
// use.
func (d *Sharded) ID(x uint32) uint32 { return d.s.ID(x) }
