package dsu

import (
	"runtime"

	"repro/internal/engine"
	"repro/internal/exec"
)

// Edge is one element pair of a batch: an edge to unite across, or a
// connectivity query to answer.
type Edge = exec.Edge

// BatchOption tunes a single batch call (UniteAll, SameSetAll).
type BatchOption interface {
	applyBatch(*exec.Config)
}

type batchOptionFunc func(*exec.Config)

func (f batchOptionFunc) applyBatch(c *exec.Config) { f(c) }

// WithWorkers fixes the batch worker-pool size. The default (and any
// value ≤ 0) is runtime.GOMAXPROCS(0); the pool never exceeds the batch
// length.
func WithWorkers(workers int) BatchOption {
	return batchOptionFunc(func(c *exec.Config) { c.Workers = workers })
}

// WithGrain sets the number of edges a worker claims from the batch at a
// time. Smaller grains balance skewed batches better; larger grains
// amortize scheduling overhead. Values ≤ 0 select the default (1024).
func WithGrain(grain int) BatchOption {
	return batchOptionFunc(func(c *exec.Config) { c.Grain = grain })
}

// batchConfig resolves the execution configuration for one batch call —
// the single options funnel the blocking, sharded, and stream paths all
// route through. The scheduling seed is plumbed from the structure's
// WithSeed option, so a structure built for reproducibility also schedules
// its batches reproducibly.
func batchConfig(seed uint64, opts []BatchOption) exec.Config {
	cfg := exec.Config{Workers: runtime.GOMAXPROCS(0), Seed: seed}
	for _, o := range opts {
		o.applyBatch(&cfg)
	}
	return cfg
}

// UniteAll merges across every edge of the batch using a pool of
// work-stealing workers and returns the number of edges that performed a
// merge. The resulting partition — and the returned count — are exactly
// those of a sequential pass over the batch, for any worker count and
// schedule. UniteAll may run concurrently with any other operation,
// including other batches.
func (d *DSU) UniteAll(edges []Edge, opts ...BatchOption) int {
	res := d.x.UniteAll(edges, batchConfig(d.x.Seed(), opts))
	return int(res.Merged)
}

// UniteAllCounted is UniteAll, accumulating the pool's summed work
// counters into st.
func (d *DSU) UniteAllCounted(edges []Edge, st *Stats, opts ...BatchOption) int {
	res := d.x.UniteAll(edges, batchConfig(d.x.Seed(), opts))
	st.Add(res.Stats())
	return int(res.Merged)
}

// SameSetAll answers pairs[i] into element i of the returned slice, using
// the same worker pool as UniteAll. Each answer is linearizable; with no
// concurrent Unites the whole slice is exact for the current partition.
// Under WithAdaptiveFind this is the query path the adaptive policy may
// downgrade to a cheaper find variant — the answers are identical either
// way.
func (d *DSU) SameSetAll(pairs []Edge, opts ...BatchOption) []bool {
	out, _ := d.x.SameSetAll(pairs, batchConfig(d.x.Seed(), opts))
	return out
}

// SameSetAllCounted is SameSetAll with work accounting into st.
func (d *DSU) SameSetAllCounted(pairs []Edge, st *Stats, opts ...BatchOption) []bool {
	out, res := d.x.SameSetAll(pairs, batchConfig(d.x.Seed(), opts))
	st.Add(res.Stats())
	return out
}

// UniteAll merges across every edge of the batch, as DSU.UniteAll. Edges
// must name elements already created by MakeSet; MakeSet may run
// concurrently with the batch.
func (d *Dynamic) UniteAll(edges []Edge, opts ...BatchOption) int {
	res := engine.UniteAll(d.c, edges, batchConfig(d.seed, opts))
	return int(res.Merged)
}

// SameSetAll answers pairs[i] into element i of the returned slice, as
// DSU.SameSetAll.
func (d *Dynamic) SameSetAll(pairs []Edge, opts ...BatchOption) []bool {
	out, _ := engine.SameSetAll(d.c, pairs, batchConfig(d.seed, opts))
	return out
}
