package dsu

import (
	"runtime"

	"repro/internal/engine"
	"repro/internal/exec"
)

// Edge is one element pair of a batch: an edge to unite across, or a
// connectivity query to answer.
type Edge = exec.Edge

// BatchOption tunes a single batch call (UniteAll, SameSetAll).
type BatchOption interface {
	applyBatch(*exec.Config)
}

type batchOptionFunc func(*exec.Config)

func (f batchOptionFunc) applyBatch(c *exec.Config) { f(c) }

// WithWorkers fixes the batch worker-pool size. The default (and any
// value ≤ 0) is runtime.GOMAXPROCS(0); the pool never exceeds the batch
// length.
func WithWorkers(workers int) BatchOption {
	return batchOptionFunc(func(c *exec.Config) { c.Workers = workers })
}

// WithGrain sets the number of edges a worker claims from the batch at a
// time. Smaller grains balance skewed batches better; larger grains
// amortize scheduling overhead. Values ≤ 0 select the default (1024).
func WithGrain(grain int) BatchOption {
	return batchOptionFunc(func(c *exec.Config) { c.Grain = grain })
}

// batchConfig resolves the execution configuration for one batch call —
// the single options funnel the blocking, sharded, and stream paths all
// route through. The scheduling seed is plumbed from the structure's
// WithSeed option, so a structure built for reproducibility also schedules
// its batches reproducibly.
func batchConfig(seed uint64, opts []BatchOption) exec.Config {
	cfg := exec.Config{Workers: runtime.GOMAXPROCS(0), Seed: seed}
	for _, o := range opts {
		o.applyBatch(&cfg)
	}
	return cfg
}

// uniteVeneer and queryVeneer phrase an option-vocabulary batch call in
// the Universe layer's request/response form — the thin veneer every
// in-process batch entry point (flat and sharded) now is, so remote and
// local batches run through one funnel and one validation. The only error
// the DTO layer can report on an in-process call is a contract violation
// (an element outside the universe), which was always a panic; it just
// panics with a diagnosis now instead of an index fault inside a worker.
func uniteVeneer(u *Universe, edges []Edge, opts []BatchOption) BatchReply {
	rep, err := u.UniteAll(UniteRequest{Edges: edges, Options: batchOptionsOf(opts)})
	if err != nil {
		panic(err)
	}
	return rep
}

func queryVeneer(u *Universe, pairs []Edge, opts []BatchOption) BatchReply {
	rep, err := u.SameSetAll(QueryRequest{Pairs: pairs, Options: batchOptionsOf(opts)})
	if err != nil {
		panic(err)
	}
	return rep
}

// UniteAll merges across every edge of the batch using a pool of
// work-stealing workers and returns the number of edges that performed a
// merge. The resulting partition — and the returned count — are exactly
// those of a sequential pass over the batch, for any worker count and
// schedule. UniteAll may run concurrently with any other operation,
// including other batches.
func (d *DSU) UniteAll(edges []Edge, opts ...BatchOption) int {
	return int(uniteVeneer(d.uni, edges, opts).Merged)
}

// UniteAllCounted is UniteAll, accumulating the pool's summed work
// counters into st.
func (d *DSU) UniteAllCounted(edges []Edge, st *Stats, opts ...BatchOption) int {
	rep := uniteVeneer(d.uni, edges, opts)
	st.Add(rep.Stats)
	return int(rep.Merged)
}

// SameSetAll answers pairs[i] into element i of the returned slice, using
// the same worker pool as UniteAll. Each answer is linearizable; with no
// concurrent Unites the whole slice is exact for the current partition.
// Under WithAdaptiveFind this is the query path the adaptive policy may
// downgrade to a cheaper find variant — the answers are identical either
// way.
func (d *DSU) SameSetAll(pairs []Edge, opts ...BatchOption) []bool {
	return queryVeneer(d.uni, pairs, opts).Answers
}

// SameSetAllCounted is SameSetAll with work accounting into st.
func (d *DSU) SameSetAllCounted(pairs []Edge, st *Stats, opts ...BatchOption) []bool {
	rep := queryVeneer(d.uni, pairs, opts)
	st.Add(rep.Stats)
	return rep.Answers
}

// UniteAll merges across every edge of the batch, as DSU.UniteAll. Edges
// must name elements already created by MakeSet; MakeSet may run
// concurrently with the batch.
func (d *Dynamic) UniteAll(edges []Edge, opts ...BatchOption) int {
	res := engine.UniteAll(d.c, edges, batchConfig(d.seed, opts))
	return int(res.Merged)
}

// SameSetAll answers pairs[i] into element i of the returned slice, as
// DSU.SameSetAll.
func (d *Dynamic) SameSetAll(pairs []Edge, opts ...BatchOption) []bool {
	out, _ := engine.SameSetAll(d.c, pairs, batchConfig(d.seed, opts))
	return out
}
