package dsu_test

import (
	"fmt"
	"sync"

	"repro/dsu"
)

// The simplest use: a fixed universe, sequential calls.
func Example() {
	d := dsu.New(5)
	d.Unite(0, 1)
	d.Unite(3, 4)
	fmt.Println(d.SameSet(0, 1))
	fmt.Println(d.SameSet(1, 3))
	fmt.Println(d.Sets())
	// Output:
	// true
	// false
	// 3
}

// Concurrent connected components: goroutines share the structure with no
// locking at all.
func Example_concurrent() {
	edges := [][2]uint32{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {6, 7}}
	d := dsu.New(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(edges); i += 4 {
				d.Unite(edges[i][0], edges[i][1])
			}
		}(w)
	}
	wg.Wait()
	fmt.Println(d.Sets())
	fmt.Println(d.SameSet(0, 2), d.SameSet(3, 5), d.SameSet(0, 6))
	// Output:
	// 3
	// true true false
}

// Selecting a paper variant and counting its shared-memory work.
func ExampleWithFind() {
	d := dsu.New(4, dsu.WithFind(dsu.OneTrySplitting), dsu.WithSeed(42))
	var st dsu.Stats
	d.UniteCounted(0, 1, &st)
	d.UniteCounted(2, 3, &st)
	d.UniteCounted(0, 3, &st)
	fmt.Println(st.Links)
	fmt.Println(st.Ops)
	// Output:
	// 3
	// 3
}

// Growing the universe on line with MakeSet.
func ExampleDynamic() {
	d := dsu.NewDynamic(100)
	a, _ := d.MakeSet()
	b, _ := d.MakeSet()
	c, _ := d.MakeSet()
	d.Unite(a, b)
	fmt.Println(d.SameSet(a, b), d.SameSet(a, c))
	fmt.Println(d.Len())
	// Output:
	// true false
	// 3
}
