package dsu

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/exec"
	"repro/internal/wal"
)

// Durable tenants: a Registry built WithDurability gives every universe
// it creates a per-tenant write-ahead log (internal/wal) attached at the
// execution seam. Every mutation batch — blocking calls, streams, remote
// RPCs, and point Unites through the Universe — is appended to the log
// and durable (per the sync policy) before it is applied, so a batch any
// caller saw acknowledged is a batch recovery will replay; queries are
// never logged. Create on an existing log recovers the tenant first:
// latest valid snapshot, then the tail of batches after it, replayed
// through the same execution seam. Because the partition of a union-find
// forest is determined by the edge sequence alone — unites are
// order-independent and idempotent at the partition level — snapshot +
// tail replay reproduces exactly the partition the log's full history
// would.
//
// The one durability hole is deliberate: point operations on a raw
// structure handle (DSU.Unite and friends) do not cross the execution
// seam and are not logged. The tenant surface — Universe and everything
// the network front end exposes — is fully covered.

// ErrNotDurable reports a durability operation on a universe or registry
// without persistence configured.
var ErrNotDurable = errors.New("dsu: durability is not configured (WithDurability)")

// logSuffix names tenant log files: <dir>/<tenant>.dsulog.
const logSuffix = ".dsulog"

// SyncPolicy selects when a durable tenant's Append reaches its
// durability point — the public face of the log's policy knob.
type SyncPolicy int

const (
	// SyncGroup (the default) fsyncs once per coalesced chunk of
	// concurrent batches — group commit.
	SyncGroup SyncPolicy = iota
	// SyncNone leaves fsync to snapshots, close, and the OS.
	SyncNone
	// SyncAlways fsyncs every batch before it is acknowledged.
	SyncAlways
)

// String names the policy as ParseSyncPolicy spells it.
func (p SyncPolicy) String() string { return p.wal().String() }

func (p SyncPolicy) wal() wal.SyncPolicy {
	switch p {
	case SyncNone:
		return wal.SyncNone
	case SyncAlways:
		return wal.SyncAlways
	default:
		return wal.SyncGroup
	}
}

// ParseSyncPolicy maps a flag-friendly name to its SyncPolicy,
// case-insensitively: "group" (or "", "default"), "none", "always" (or
// "batch"). Each policy's String() round-trips.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "", "default", "group":
		return SyncGroup, nil
	case "none":
		return SyncNone, nil
	case "always", "batch":
		return SyncAlways, nil
	default:
		return 0, fmt.Errorf("dsu: unknown sync policy %q", s)
	}
}

// durabilityConfig is the registry-level persistence configuration.
type durabilityConfig struct {
	dir             string
	sync            SyncPolicy
	checkpointEvery int64
}

// DurabilityOption tunes WithDurability.
type DurabilityOption interface {
	applyDurability(*durabilityConfig)
}

type durabilityOptionFunc func(*durabilityConfig)

func (f durabilityOptionFunc) applyDurability(c *durabilityConfig) { f(c) }

// WithSyncPolicy selects the append durability policy (default
// SyncGroup).
func WithSyncPolicy(p SyncPolicy) DurabilityOption {
	return durabilityOptionFunc(func(c *durabilityConfig) { c.sync = p })
}

// WithCheckpointEvery asks each tenant to snapshot automatically after
// every k logged edges (0, the default, checkpoints only on demand via
// Universe.Checkpoint). Snapshots bound recovery time: recovery replays
// only the tail past the latest snapshot.
func WithCheckpointEvery(k int64) DurabilityOption {
	return durabilityOptionFunc(func(c *durabilityConfig) { c.checkpointEvery = k })
}

// WithDurability makes every universe the registry creates durable:
// tenant logs live in dir (created on first use) as <tenant>.dsulog,
// and Create on a tenant whose log exists recovers it — latest valid
// snapshot plus replay of the tail — before the universe is published.
// Pair with Registry.Close to seal the logs on shutdown.
func WithDurability(dir string, opts ...DurabilityOption) RegistryOption {
	cfg := &durabilityConfig{dir: dir}
	for _, o := range opts {
		o.applyDurability(cfg)
	}
	return registryOptionFunc(func(r *Registry) { r.dur = cfg })
}

// durableState is a durable universe's persistence handle: the log
// writer plus the checkpoint routine, whose mutex makes "one checkpoint
// at a time" true across the on-demand and automatic triggers.
type durableState struct {
	w    *wal.Writer
	b    Backend
	kind Kind
	mu   sync.Mutex
}

// checkpoint quiesces the structure and snapshots it into the log:
// in-flight mutation batches drain, new ones hold at the executor's
// gate, and the Snapshot() written covers exactly the batches numbered
// up to the log's current sequence. Blocks until the snapshot is
// durable.
func (d *durableState) checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var err error
	d.b.executor().Quiesce(func(uint64) {
		_, err = d.w.WriteSnapshot(uint8(d.kind), d.b.Snapshot())
	})
	return err
}

// autoCheckpoint is the executor's post-batch trigger: same routine,
// but skips out when a checkpoint is already running (many batches
// cross the threshold together; one snapshot serves them all). Failures
// are not reported here — a snapshot write failure poisons the log, and
// the next append surfaces it where a caller can see it.
func (d *durableState) autoCheckpoint() {
	if !d.mu.TryLock() {
		return
	}
	defer d.mu.Unlock()
	d.b.executor().Quiesce(func(uint64) {
		d.w.WriteSnapshot(uint8(d.kind), d.b.Snapshot())
	})
}

// validDurableName keeps tenant log filenames safe: the same charset
// the network front end enforces for tenant names.
func validDurableName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

func (r *Registry) logPath(tenant string) string {
	return filepath.Join(r.dur.dir, tenant+logSuffix)
}

// durableMeta phrases a tenant's resolved configuration as the log
// header's Meta. shards must already be resolved (Create resolves the
// GOMAXPROCS default before calling) — a log created under one CPU
// count must recover identically under another.
func durableMeta(name string, n int, kind Kind, cfg config) wal.Meta {
	var shards uint32
	if kind == KindSharded {
		shards = uint32(cfg.shards)
	}
	return wal.Meta{
		Tenant: name,
		N:      n,
		Kind:   uint8(kind),
		Find:   uint8(cfg.find),
		Early:  cfg.early,
		Shards: shards,
		Seed:   cfg.seed,
	}
}

// optionsFromMeta reconstructs the option list a log's header describes
// — how RestoreTenants and Rewind rebuild a structure that replays the
// log under the configuration that wrote it.
func optionsFromMeta(m wal.Meta) []Option {
	opts := []Option{WithKind(Kind(m.Kind)), WithSeed(m.Seed), WithFind(FindStrategy(m.Find))}
	if m.Early {
		opts = append(opts, WithEarlyTermination())
	}
	if m.Shards > 0 {
		opts = append(opts, WithShards(int(m.Shards)))
	}
	return opts
}

// newBackendFromMeta builds an unregistered structure under the log's
// recorded configuration (Rewind's materialization path).
func newBackendFromMeta(m wal.Meta) Backend {
	opts := optionsFromMeta(m)
	switch Kind(m.Kind) {
	case KindSharded:
		return NewSharded(m.N, int(m.Shards), opts...)
	case KindLockFree:
		return NewLockFree(m.N, opts...)
	default:
		return New(m.N, opts...)
	}
}

// restoreBlock is how many snapshot-derived edges restore batches at a
// time.
const restoreBlock = 1 << 16

// restoreBackend brings a fresh structure to the log's state at
// sequence upTo: apply the latest snapshot not past upTo, replay the
// tail (snapshot, upTo], prime the applied sequence. Runs before the
// WAL is attached, so nothing here is re-logged, and before
// instrumentation, so recovery work never pollutes tenant metrics.
func restoreBackend(b Backend, rd *wal.Reader, upTo uint64) error {
	x := b.executor()
	var after uint64
	if si, ok := rd.LatestSnapshotAt(upTo); ok {
		sr, err := rd.ReadSnapshot(si)
		if err != nil {
			return err
		}
		if err := applyParents(x, sr.Parents); err != nil {
			return err
		}
		after = si.Seq
	}
	err := rd.Replay(after, upTo, func(_ uint64, edges []exec.Edge) error {
		res := x.UniteAll(edges, exec.Config{})
		return res.Err
	})
	if err != nil {
		return err
	}
	x.SetSeq(upTo)
	return nil
}

// applyParents merges a snapshot's flattened forest into the structure:
// every non-root parent edge (i, parents[i]), in blocks. The snapshot
// records a partition, not a forest shape, and unites reproduce exactly
// that partition on any backend kind.
func applyParents(x *exec.Executor, parents []uint32) error {
	buf := make([]exec.Edge, 0, restoreBlock)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		res := x.UniteAll(buf, exec.Config{})
		buf = buf[:0]
		return res.Err
	}
	for i, p := range parents {
		if uint32(i) == p {
			continue
		}
		buf = append(buf, exec.Edge{X: uint32(i), Y: p})
		if len(buf) == restoreBlock {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// openDurable opens (or recovers) the tenant's log and attaches it to
// the universe. Called by Create under the registry lock, before the
// universe is instrumented or published; on error the universe is never
// registered.
func (r *Registry) openDurable(u *Universe, n int, kind Kind, cfg config) error {
	if !validDurableName(u.name) {
		return fmt.Errorf("dsu: tenant name %q is not usable as a log filename (want [a-zA-Z0-9._-], max 128)", u.name)
	}
	if err := os.MkdirAll(r.dur.dir, 0o755); err != nil {
		return err
	}
	w, rd, err := wal.Open(r.logPath(u.name), durableMeta(u.name, n, kind, cfg), wal.Options{
		Sync:            r.dur.sync.wal(),
		CheckpointEvery: r.dur.checkpointEvery,
	})
	if err != nil {
		return err
	}
	if rd != nil {
		if err := restoreBackend(u.b, rd, rd.LastSeq()); err != nil {
			w.Close()
			return fmt.Errorf("dsu: recovering tenant %q: %w", u.name, err)
		}
	}
	d := &durableState{w: w, b: u.b, kind: kind}
	u.dur = d
	u.b.executor().AttachWAL(w, d.autoCheckpoint)
	return nil
}

// Durable reports whether the universe persists its mutations to a
// write-ahead log.
func (u *Universe) Durable() bool { return u.dur != nil }

// Seq returns the universe's applied-batch sequence number: 0 before
// any mutation batch, and on a durable universe the durable log
// position (primed by recovery, advanced by every logged batch).
// Operators compare it across replicas; TenantInfo and the
// dsu_tenant_seq gauge surface it.
func (u *Universe) Seq() uint64 { return u.b.executor().Seq() }

// Checkpoint snapshots the universe into its log, now. It drains
// in-flight mutation batches first (holding new ones briefly at the
// execution seam's gate), so the snapshot is taken at true quiescence —
// never a torn view of a batch mid-application — and returns once the
// snapshot is durable. Returns ErrNotDurable without persistence.
func (u *Universe) Checkpoint() error {
	if u.dur == nil {
		return ErrNotDurable
	}
	return u.dur.checkpoint()
}

// durableUnite routes a point Unite through the execution seam so it is
// logged like any batch. Point operations on the tenant surface keep
// their panic-on-contract-violation semantics, and a WAL append failure
// is exactly that: the log is poisoned and nothing further can be
// acknowledged.
func (u *Universe) durableUnite(x, y uint32) bool {
	if n := uint32(u.b.N()); x >= n || y >= n {
		panic(fmt.Sprintf("dsu: Unite(%d,%d) outside the %d-element universe", x, y, n))
	}
	res := u.b.executor().UniteAll([]exec.Edge{{X: x, Y: y}}, exec.Config{Workers: 1})
	if res.Err != nil {
		panic(fmt.Errorf("dsu: durable Unite not logged: %w", res.Err))
	}
	return res.Merged > 0
}

// Close seals every durable tenant's log (summary, footer, fsync) and
// is the graceful-shutdown counterpart of WithDurability: a sealed log
// reopens through its index with no scan. Idempotent; tenants remain
// usable for queries afterwards, but further mutations fail. A registry
// without durability has nothing to close and returns nil.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var errs []error
	for name, u := range r.m {
		if u.dur != nil {
			if err := u.dur.w.Close(); err != nil {
				errs = append(errs, fmt.Errorf("dsu: sealing tenant %q: %w", name, err))
			}
		}
	}
	return errors.Join(errs...)
}

// RestoreTenants scans the durability directory and re-creates every
// tenant whose log is present but not yet registered, under the exact
// configuration its log header records. It returns the restored names,
// sorted. Servers call it once at startup, before listening — recovery
// finishes before the first request can observe a tenant.
func (r *Registry) RestoreTenants() ([]string, error) {
	if r.dur == nil {
		return nil, ErrNotDurable
	}
	entries, err := os.ReadDir(r.dur.dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil // nothing persisted yet
		}
		return nil, err
	}
	var restored []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), logSuffix) {
			continue
		}
		meta, err := wal.ReadMeta(filepath.Join(r.dur.dir, e.Name()))
		if err != nil {
			return restored, fmt.Errorf("dsu: restoring %s: %w", e.Name(), err)
		}
		if meta.Tenant != strings.TrimSuffix(e.Name(), logSuffix) {
			return restored, fmt.Errorf("dsu: log %s records tenant %q (renamed file?)", e.Name(), meta.Tenant)
		}
		if _, ok := r.Get(meta.Tenant); ok {
			continue
		}
		if _, err := r.Create(meta.Tenant, meta.N, optionsFromMeta(meta)...); err != nil {
			return restored, fmt.Errorf("dsu: restoring tenant %q: %w", meta.Tenant, err)
		}
		restored = append(restored, meta.Tenant)
	}
	sort.Strings(restored)
	return restored, nil
}

// Rewind materializes the tenant's state as of sequence seq — a
// point-in-time read of its history. The returned universe is a fresh,
// unregistered, non-durable structure named "<tenant>@<seq>", built
// under the log's recorded configuration and fed the latest snapshot at
// or before seq plus the replayed tail (snapshot, seq]; its Seq()
// reports seq. The tenant's live universe and log are untouched — the
// log is read from its on-disk state, so batches acknowledged after the
// last fsync-equivalent point may not be visible until the writer
// flushes (rewind of a live SyncNone tenant sees only what the OS has).
// seq 0 is the empty partition; seq past the log's end is an error.
func (r *Registry) Rewind(tenant string, seq uint64) (*Universe, error) {
	if r.dur == nil {
		return nil, ErrNotDurable
	}
	if !validDurableName(tenant) {
		return nil, fmt.Errorf("dsu: invalid tenant name %q", tenant)
	}
	rd, err := wal.OpenReader(r.logPath(tenant))
	if err != nil {
		return nil, err
	}
	if seq > rd.LastSeq() {
		return nil, fmt.Errorf("dsu: tenant %q log ends at sequence %d, cannot rewind to %d", tenant, rd.LastSeq(), seq)
	}
	b := newBackendFromMeta(rd.Meta())
	if err := restoreBackend(b, rd, seq); err != nil {
		return nil, fmt.Errorf("dsu: rewinding tenant %q to %d: %w", tenant, seq, err)
	}
	return NewUniverse(fmt.Sprintf("%s@%d", tenant, seq), b), nil
}
