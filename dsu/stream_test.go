package dsu_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"repro/dsu"
	"repro/internal/engine"
	"repro/internal/workload"
)

// streamBackends builds the two backends the stream contract covers, both
// seeded identically so partitions are comparable structure to structure.
func streamBackends(n int, seed uint64) map[string]func() dsu.StreamBackend {
	return map[string]func() dsu.StreamBackend{
		"flat":    func() dsu.StreamBackend { return dsu.New(n, dsu.WithSeed(seed)) },
		"sharded": func() dsu.StreamBackend { return dsu.NewSharded(n, 3, dsu.WithSeed(seed)) },
	}
}

// labelsOf reads the canonical partition off either backend, through the
// common Backend surface.
func labelsOf(t *testing.T, b dsu.Backend) []uint32 {
	t.Helper()
	return b.CanonicalLabels()
}

// TestStreamMatchesBlocking is the acceptance cross-validation: for seeds
// × buffer sizes × {flat, sharded} backends, pushing an edge sequence
// through dsu.Stream (in randomly sized chunks, with occasional explicit
// flushes) must produce the exact partition of a blocking UniteAll loop
// over the same sequence, plus the same total merge count on the flat
// backend. CI runs this under -race.
func TestStreamMatchesBlocking(t *testing.T) {
	const n = 2000
	for _, seed := range []uint64{1, 7, 42} {
		edges := engine.FromOps(workload.ZipfMixed(n, 3*n, 1.0, 1.1, seed+500))
		edges = append(edges, engine.FromOps(workload.CommunityUnions(n, 2*n, 8, 0.9, seed+600))...)
		for _, buffer := range []int{64, 257, 4096} {
			for name, mk := range streamBackends(n, seed) {
				t.Run(fmt.Sprintf("seed=%d/buffer=%d/%s", seed, buffer, name), func(t *testing.T) {
					// Blocking reference: UniteAll in buffer-sized batches,
					// through the common Backend surface.
					ref := mk()
					var refMerged int
					for lo := 0; lo < len(edges); lo += buffer {
						refMerged += ref.UniteAll(edges[lo:min(lo+buffer, len(edges)):len(edges)], dsu.WithWorkers(3))
					}

					// Streamed run: same sequence, random chunking, random flushes.
					back := mk()
					s := dsu.NewStream(back,
						dsu.WithBufferSize(buffer),
						dsu.WithMaxInFlight(2),
						dsu.WithBatchOptions(dsu.WithWorkers(3), dsu.WithGrain(64)))
					rng := rand.New(rand.NewSource(int64(seed) + int64(buffer)))
					for lo := 0; lo < len(edges); {
						hi := min(lo+1+rng.Intn(700), len(edges))
						if err := s.Push(edges[lo:hi]...); err != nil {
							t.Fatal(err)
						}
						lo = hi
						if rng.Intn(5) == 0 {
							if err := s.Flush(); err != nil {
								t.Fatal(err)
							}
						}
					}
					if err := s.Close(); err != nil {
						t.Fatal(err)
					}

					if s.Edges() != int64(len(edges)) {
						t.Fatalf("stream drained %d edges, pushed %d", s.Edges(), len(edges))
					}
					if name == "flat" && s.Merged() != int64(refMerged) {
						// Sharded merge counts are structural and batching-
						// dependent (see Sharded docs); flat counts are exact.
						t.Fatalf("stream merged %d, blocking %d", s.Merged(), refMerged)
					}
					want, got := labelsOf(t, ref), labelsOf(t, back)
					for x := range got {
						if got[x] != want[x] {
							t.Fatalf("label[%d] = %d, blocking %d", x, got[x], want[x])
						}
					}
				})
			}
		}
	}
}

// TestStreamCallbackOrdering pins the delivery contract at the dsu layer:
// ids dense and ascending, one callback per sealed batch, totals matching,
// and Close draining everything before it returns.
func TestStreamCallbackOrdering(t *testing.T) {
	const n = 1000
	edges := engine.FromOps(workload.RandomUnions(n, 4*n, 77))
	var results []dsu.BatchResult
	d := dsu.New(n)
	s := dsu.NewStream(d,
		dsu.WithBufferSize(300),
		dsu.WithOnBatch(func(r dsu.BatchResult) { results = append(results, r) }))
	for _, e := range edges {
		if err := s.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wantBatches := (len(edges) + 299) / 300
	if len(results) != wantBatches {
		t.Fatalf("callbacks = %d, want %d", len(results), wantBatches)
	}
	var total, merged int64
	for i, r := range results {
		if r.ID != uint64(i+1) {
			t.Fatalf("callback %d carries id %d: not dense in-order delivery", i, r.ID)
		}
		if r.Err != nil {
			t.Fatalf("batch %d: %v", r.ID, r.Err)
		}
		total += int64(r.Edges)
		merged += r.Merged
	}
	if total != int64(len(edges)) {
		t.Errorf("callbacks cover %d edges, pushed %d", total, len(edges))
	}
	if merged != s.Merged() || int64(n)-int64(d.Sets()) != merged {
		t.Errorf("merged: callbacks %d, stream %d, structure says %d",
			merged, s.Merged(), int64(n)-int64(d.Sets()))
	}
	if err := s.Push(dsu.Edge{X: 1, Y: 2}); !errors.Is(err, dsu.ErrStreamClosed) {
		t.Errorf("Push after Close = %v, want ErrStreamClosed", err)
	}
}

// TestStreamPerBatchOverrides checks Flush's option overrides reach
// exactly one batch: a duplicate-heavy prefix flushed with WithPrefilter
// reports drops, while default batches (no filters) report none.
func TestStreamPerBatchOverrides(t *testing.T) {
	const n = 500
	var results []dsu.BatchResult
	s := dsu.NewStream(dsu.New(n),
		dsu.WithBufferSize(1<<20), // only explicit flushes seal
		dsu.WithOnBatch(func(r dsu.BatchResult) { results = append(results, r) }))

	dups := make([]dsu.Edge, 100)
	for i := range dups {
		dups[i] = dsu.Edge{X: 1, Y: 2}
	}
	if err := s.Push(dups...); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(dsu.WithPrefilter()); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(dups...); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil { // stream defaults: no filter
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("batches = %d, want 2", len(results))
	}
	if results[0].Filtered != 99 {
		t.Errorf("prefiltered batch dropped %d, want 99", results[0].Filtered)
	}
	if results[0].Stats().Filtered != 99 {
		t.Errorf("prefiltered batch stats.Filtered = %d, want 99", results[0].Stats().Filtered)
	}
	if results[1].Filtered != 0 {
		t.Errorf("default batch dropped %d, want 0 (override must not stick)", results[1].Filtered)
	}
	if s.Filtered() != 99 {
		t.Errorf("stream filtered total = %d, want 99", s.Filtered())
	}
}

// TestStreamContextAbort checks cancellation at the dsu layer: abandoned
// batches surface through Failed and the callback's Err, and the partition
// only reflects batches that executed.
func TestStreamContextAbort(t *testing.T) {
	const n = 300
	ctx, cancel := context.WithCancel(context.Background())
	d := dsu.New(n)
	executed := make(chan struct{}, 16)
	s := dsu.NewStream(d,
		dsu.WithBufferSize(50),
		dsu.WithStreamContext(ctx),
		dsu.WithOnBatch(func(r dsu.BatchResult) { executed <- struct{}{} }))
	if err := s.Push(engine.FromOps(workload.RandomUnions(n, 50, 5))...); err != nil {
		t.Fatal(err)
	}
	<-executed // batch 1 done
	cancel()
	if err := s.Push(engine.FromOps(workload.RandomUnions(n, 50, 6))...); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close = %v, want context.Canceled", err)
	}
	if s.Failed() != 1 {
		t.Errorf("Failed() = %d, want 1", s.Failed())
	}
	if s.Batches() != 2 {
		t.Errorf("Batches() = %d, want 2 (abandoned batches still report)", s.Batches())
	}
}

// TestConnectedFilter checks WithConnectedFilter drops exactly the edges
// that cannot merge: partitions are untouched on both backends, the flat
// merge count is untouched, drops land in the stats, and on a re-ingested
// stream the second pass drops every edge.
func TestConnectedFilter(t *testing.T) {
	const n = 1200
	edges := engine.FromOps(workload.CommunityUnions(n, 3*n, 6, 0.85, 91))

	t.Run("flat", func(t *testing.T) {
		raw, screened := dsu.New(n), dsu.New(n)
		var st dsu.Stats
		a := raw.UniteAll(edges)
		b := screened.UniteAllCounted(edges, &st, dsu.WithConnectedFilter())
		if a != b {
			t.Errorf("merged %d raw vs %d screened (flat counts must match)", a, b)
		}
		want, got := raw.CanonicalLabels(), screened.CanonicalLabels()
		for x := range got {
			if got[x] != want[x] {
				t.Fatalf("label[%d] = %d, want %d", x, got[x], want[x])
			}
		}
		if st.Filtered == 0 {
			t.Error("screen on a community batch dropped nothing")
		}
		// Re-ingest: everything is now connected, so the screen drops all.
		var st2 dsu.Stats
		if again := screened.UniteAllCounted(edges, &st2, dsu.WithConnectedFilter()); again != 0 {
			t.Errorf("re-ingested batch merged %d, want 0", again)
		}
		if st2.Filtered != int64(len(edges)) {
			t.Errorf("re-ingested screen dropped %d, want %d", st2.Filtered, len(edges))
		}
	})

	t.Run("sharded", func(t *testing.T) {
		flat, screened := dsu.New(n), dsu.NewSharded(n, 4)
		flat.UniteAll(edges)
		var st dsu.Stats
		screened.UniteAllCounted(edges, &st, dsu.WithConnectedFilter(), dsu.WithPrefilter())
		want, got := flat.CanonicalLabels(), screened.CanonicalLabels()
		for x := range got {
			if got[x] != want[x] {
				t.Fatalf("label[%d] = %d, want %d", x, got[x], want[x])
			}
		}
		if st.Filtered == 0 {
			t.Error("composed prefilter+screen dropped nothing on a community batch")
		}
	})

	t.Run("stream", func(t *testing.T) {
		ref, back := dsu.New(n), dsu.New(n)
		ref.UniteAll(edges)
		s := dsu.NewStream(back,
			dsu.WithBufferSize(512),
			dsu.WithBatchOptions(dsu.WithConnectedFilter()))
		if err := s.Push(edges...); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if s.Filtered() == 0 {
			t.Error("streamed screen dropped nothing")
		}
		want, got := ref.CanonicalLabels(), back.CanonicalLabels()
		for x := range got {
			if got[x] != want[x] {
				t.Fatalf("label[%d] = %d, want %d", x, got[x], want[x])
			}
		}
	})
}

// TestFilterStatsAccounting pins the satellite fix: filtered-edge counts
// flow into Stats.Filtered consistently on the flat and sharded batch
// paths, and a filterless run reports zero.
func TestFilterStatsAccounting(t *testing.T) {
	const n = 800
	edges := engine.FromOps(workload.ZipfMixed(n, 4*n, 1.0, 1.3, 53))
	dropped := len(edges) - len(dsu.Prefilter(edges))
	if dropped == 0 {
		t.Fatal("test batch has no duplicates; pick a different seed")
	}

	var flatSt, shardSt, cleanSt dsu.Stats
	dsu.New(n).UniteAllCounted(edges, &flatSt, dsu.WithPrefilter())
	dsu.NewSharded(n, 3).UniteAllCounted(edges, &shardSt, dsu.WithPrefilter())
	dsu.New(n).UniteAllCounted(edges, &cleanSt)
	if flatSt.Filtered != int64(dropped) {
		t.Errorf("flat Stats.Filtered = %d, want %d", flatSt.Filtered, dropped)
	}
	if shardSt.Filtered != int64(dropped) {
		t.Errorf("sharded Stats.Filtered = %d, want %d (flat and sharded must agree)", shardSt.Filtered, dropped)
	}
	if cleanSt.Filtered != 0 {
		t.Errorf("filterless Stats.Filtered = %d, want 0", cleanSt.Filtered)
	}
}

// TestStreamSoak is the randomized shutdown/ordering soak CI runs under
// -race on the GOMAXPROCS matrix: concurrent producers hammer one stream
// per iteration with pushes and flushes, Close drains, and the final
// partition must equal the blocking single-batch partition (unions are
// order-independent, so producer interleaving cannot change it).
// Iterations are bounded; STREAM_SOAK=1 selects the longer CI bound.
func TestStreamSoak(t *testing.T) {
	iters := 4
	if os.Getenv("STREAM_SOAK") != "" {
		iters = 24
	}
	const n = 600
	for it := 0; it < iters; it++ {
		seed := uint64(1000 + it)
		edges := engine.FromOps(workload.RandomUnions(n, 2*n, seed))
		ref := dsu.New(n, dsu.WithSeed(seed))
		ref.UniteAll(edges)
		want := ref.CanonicalLabels()

		var back dsu.StreamBackend = dsu.New(n, dsu.WithSeed(seed))
		if it%2 == 1 {
			back = dsu.NewSharded(n, 1+it%4, dsu.WithSeed(seed))
		}
		var delivered int64
		var mu sync.Mutex
		s := dsu.NewStream(back,
			dsu.WithBufferSize(64+16*it),
			dsu.WithMaxInFlight(1+it%3),
			dsu.WithBatchOptions(dsu.WithWorkers(2), dsu.WithGrain(32)),
			dsu.WithOnBatch(func(r dsu.BatchResult) {
				mu.Lock()
				delivered += int64(r.Edges)
				mu.Unlock()
				if r.Err != nil {
					t.Errorf("iter %d batch %d: %v", it, r.ID, r.Err)
				}
			}))
		const producers = 4
		per := len(edges) / producers
		var wg sync.WaitGroup
		for w := 0; w < producers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(seed)*31 + int64(w)))
				part := edges[w*per : (w+1)*per]
				for lo := 0; lo < len(part); {
					hi := min(lo+1+rng.Intn(90), len(part))
					if err := s.Push(part[lo:hi]...); err != nil {
						t.Errorf("iter %d producer %d: %v", it, w, err)
						return
					}
					lo = hi
					if rng.Intn(7) == 0 {
						if err := s.Flush(); err != nil {
							t.Errorf("iter %d producer %d flush: %v", it, w, err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		if err := s.Push(edges[producers*per:]...); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("iter %d Close: %v", it, err)
		}
		if delivered != int64(len(edges)) {
			t.Fatalf("iter %d: callbacks cover %d edges, pushed %d", it, delivered, len(edges))
		}
		got := labelsOf(t, back)
		for x := range got {
			if got[x] != want[x] {
				t.Fatalf("iter %d: label[%d] = %d, want %d", it, x, got[x], want[x])
			}
		}
	}
}
