// Shardedcc computes connected components over a community-structured edge
// stream with the sharded DSU: the universe is partitioned across per-shard
// engines, each arriving batch routes its intra-shard edges to the owning
// shard's own engine run (all shards in parallel) and defers cross-shard
// edges to the reconciliation pass. Community-structured graphs are the
// workload sharding is built for — most edges resolve inside one
// shard-sized working set, and only the few community-crossing edges touch
// the shared bridge forest.
//
// The final partition is validated against an exact sequential BFS and
// against the flat DSU fed the same stream.
//
//	go run ./examples/shardedcc [-n 1000000] [-m 4000000] [-shards 8] \
//	    [-communities 64] [-pintra 0.95] [-batch 65536] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/dsu"
	"repro/internal/graph"
	"repro/internal/workload"
)

func main() {
	var (
		n           = flag.Int("n", 1_000_000, "vertices")
		m           = flag.Int("m", 4_000_000, "streamed edges")
		shards      = flag.Int("shards", 8, "shard count")
		communities = flag.Int("communities", 64, "graph communities")
		pIntra      = flag.Float64("pintra", 0.95, "probability an edge stays inside its community")
		batch       = flag.Int("batch", 1<<16, "edges per arriving batch")
		workers     = flag.Int("workers", 0, "worker budget per batch (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *batch <= 0 || *shards < 1 {
		fmt.Fprintln(os.Stderr, "shardedcc: -batch must be positive and -shards at least 1")
		os.Exit(1)
	}

	fmt.Printf("generating community graph (n=%d, m=%d, c=%d, pintra=%.2f)...\n",
		*n, *m, *communities, *pIntra)
	ops := workload.CommunityUnions(*n, *m, *communities, *pIntra, 2026)
	stream := make([]dsu.Edge, len(ops))
	bfsEdges := make([]graph.Edge, len(ops))
	for i, op := range ops {
		stream[i] = dsu.Edge{X: op.X, Y: op.Y}
		bfsEdges[i] = graph.Edge{U: op.X, V: op.Y}
	}

	pool := *workers
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	d := dsu.NewSharded(*n, *shards, dsu.WithSeed(1))
	fmt.Printf("ingesting in batches of %d with %d shards (%d resolved) and %d workers...\n",
		*batch, *shards, d.Shards(), pool)
	merged, batches := 0, 0
	start := time.Now()
	for lo := 0; lo < len(stream); lo += *batch {
		hi := min(lo+*batch, len(stream))
		merged += d.UniteAll(stream[lo:hi], dsu.WithWorkers(*workers), dsu.WithPrefilter())
		batches++
	}
	elapsed := time.Since(start)

	fmt.Printf("ingested %d edges in %d batches in %v (%.2f Medges/s), %d merges, %d components\n",
		*m, batches, elapsed.Round(time.Millisecond),
		float64(*m)/elapsed.Seconds()/1e6, merged, d.Sets())

	fmt.Println("validating against sequential BFS...")
	want := graph.RefComponents(*n, bfsEdges)
	got := d.CanonicalLabels()
	for v := range got {
		if got[v] != want[v] {
			fmt.Fprintf(os.Stderr, "MISMATCH at vertex %d: sharded label %d, BFS label %d\n",
				v, got[v], want[v])
			os.Exit(1)
		}
	}

	fmt.Println("validating against the flat DSU on the same stream...")
	flat := dsu.New(*n, dsu.WithSeed(1))
	flat.UniteAll(stream, dsu.WithWorkers(*workers))
	flatLabels := flat.CanonicalLabels()
	for v := range got {
		if got[v] != flatLabels[v] {
			fmt.Fprintf(os.Stderr, "MISMATCH at vertex %d: sharded label %d, flat label %d\n",
				v, got[v], flatLabels[v])
			os.Exit(1)
		}
	}
	if flat.Sets() != d.Sets() {
		fmt.Fprintf(os.Stderr, "MISMATCH: sharded %d components, flat %d\n", d.Sets(), flat.Sets())
		os.Exit(1)
	}
	fmt.Println("OK: sharded components match BFS and the flat engine exactly.")
}
