// Connectivity computes the connected components of a large random graph
// with goroutines sharing one wait-free DSU — the paper's first motivating
// application (maintaining connected components under edge insertions) —
// and validates the result against an exact sequential BFS.
//
//	go run ./examples/connectivity [-n 1000000] [-m 3000000] [-workers 8]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/apps"
	"repro/internal/graph"
)

func main() {
	var (
		n       = flag.Int("n", 1_000_000, "vertices")
		m       = flag.Int("m", 3_000_000, "random edges")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent workers")
	)
	flag.Parse()

	fmt.Printf("generating G(n=%d, m=%d)...\n", *n, *m)
	edges := graph.ErdosRenyi(*n, *m, 2024)

	start := time.Now()
	labels := apps.ParallelCC(*n, edges, *workers)
	concurrent := time.Since(start)
	components := make(map[uint32]struct{})
	for _, l := range labels {
		components[l] = struct{}{}
	}
	fmt.Printf("concurrent DSU: %d components in %v (%.1f Medges/s, %d workers)\n",
		len(components), concurrent.Round(time.Millisecond),
		float64(*m)/concurrent.Seconds()/1e6, *workers)

	start = time.Now()
	ref := graph.RefComponents(*n, edges)
	fmt.Printf("reference BFS:  computed in %v\n", time.Since(start).Round(time.Millisecond))

	for v := range labels {
		if labels[v] != ref[v] {
			fmt.Fprintf(os.Stderr, "MISMATCH at vertex %d: DSU %d, BFS %d\n", v, labels[v], ref[v])
			os.Exit(1)
		}
	}
	fmt.Println("validation: concurrent components match exact BFS ✓")
}
