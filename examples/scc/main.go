// SCC computes strongly connected components of a directed graph with the
// forward–backward (FB) divide-and-conquer algorithm, using a shared
// wait-free DSU to collapse each discovered component concurrently — the
// model-checking motivation of the paper's introduction (Bloemen et al. use
// concurrent union-find exactly this way for on-the-fly SCC decomposition).
// The result is validated against sequential Tarjan.
//
//	go run ./examples/scc [-scale 15] [-m 300000] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/apps"
	"repro/internal/graph"
)

func main() {
	var (
		scale   = flag.Int("scale", 15, "vertices = 2^scale")
		m       = flag.Int("m", 300_000, "edges (RMAT, skewed)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent workers")
	)
	flag.Parse()
	n := 1 << *scale

	edges := graph.RMAT(*scale, *m, 11)
	fmt.Printf("FB-SCC on RMAT graph: n=%d, m=%d, %d workers\n", n, *m, *workers)

	start := time.Now()
	got := apps.SCC(n, edges, *workers)
	fbTime := time.Since(start)

	start = time.Now()
	want := apps.CanonicalSCCLabels(apps.TarjanSCC(graph.Build(n, edges, true)))
	tarjanTime := time.Since(start)

	components := make(map[uint32]struct{})
	for _, l := range got {
		components[l] = struct{}{}
	}
	fmt.Printf("FB-SCC:  %d components in %v\n", len(components), fbTime.Round(time.Millisecond))
	fmt.Printf("Tarjan:  reference in %v\n", tarjanTime.Round(time.Millisecond))

	for v := range got {
		if got[v] != want[v] {
			fmt.Fprintf(os.Stderr, "MISMATCH at vertex %d: FB %d, Tarjan %d\n", v, got[v], want[v])
			os.Exit(1)
		}
	}
	fmt.Println("validation: FB-SCC partition matches Tarjan ✓")
}
