// MST computes a minimum spanning forest with parallel Borůvka rounds over
// a shared wait-free DSU (cited by the paper via Kruskal's algorithm as a
// classic union-find application) and validates total weight and edge count
// against sequential Kruskal.
//
//	go run ./examples/mst [-n 200000] [-m 1000000] [-workers 8]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/apps"
	"repro/internal/graph"
)

func main() {
	var (
		n       = flag.Int("n", 200_000, "vertices")
		m       = flag.Int("m", 1_000_000, "edges")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent workers")
	)
	flag.Parse()

	edges := graph.RandomWeights(graph.ErdosRenyi(*n, *m, 7), 8)
	fmt.Printf("Borůvka MSF on G(n=%d, m=%d), %d workers\n", *n, *m, *workers)

	start := time.Now()
	weight, treeEdges := apps.Boruvka(*n, edges, *workers)
	fmt.Printf("Borůvka: weight %.4f, %d tree edges, %v\n",
		weight, treeEdges, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	refWeight, refEdges := graph.KruskalRef(*n, edges)
	fmt.Printf("Kruskal: weight %.4f, %d tree edges, %v\n",
		refWeight, refEdges, time.Since(start).Round(time.Millisecond))

	if treeEdges != refEdges || math.Abs(weight-refWeight) > 1e-6*math.Max(1, refWeight) {
		fmt.Fprintln(os.Stderr, "MISMATCH between Borůvka and Kruskal")
		os.Exit(1)
	}
	fmt.Println("validation: Borůvka forest matches Kruskal ✓")
}
