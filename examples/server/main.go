// Example server: a remote client of cmd/dsuserve that proves the wire
// path end to end. It creates two isolated tenants — "alpha" flat,
// "beta" sharded with the adaptive compaction policy — ingests a random
// edge batch into alpha over a streaming connection (binary framing,
// per-batch replies) and into beta over batch RPC (JSON debug mode),
// queries both remotely, and validates every answer and both final
// partitions against in-process oracles built from the same edges. Run
// it against a live server:
//
//	go run ./cmd/dsuserve -addr 127.0.0.1:7421 &
//	go run ./examples/server -addr http://127.0.0.1:7421 -n 20000 -m 60000
//
// It waits for the server's health endpoint, so starting both
// back-to-back (as CI does) is fine. Exit status 0 means every remote
// answer matched the oracle.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"reflect"
	"time"

	"repro/dsu"
	"repro/internal/server"
	"repro/internal/wire"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:7421", "dsuserve base URL")
		n       = flag.Int("n", 20000, "elements per tenant")
		m       = flag.Int("m", 60000, "edges per tenant")
		shards  = flag.Int("shards", 4, "shard count for the sharded tenant")
		seed    = flag.Int64("seed", 42, "edge-generation seed")
		buffer  = flag.Int("buffer", 4096, "stream buffer (edges)")
		wait    = flag.Duration("wait", 10*time.Second, "how long to wait for the server to come up")
		queries = flag.Int("queries", 5000, "remote connectivity queries to validate per tenant")
	)
	flag.Parse()
	log.SetFlags(0)
	ctx := context.Background()

	c := server.NewClient(*addr)
	deadline := time.Now().Add(*wait)
	for {
		if err := c.Health(ctx); err == nil {
			break
		} else if time.Now().After(deadline) {
			log.Fatalf("server at %s not healthy after %v: %v", *addr, *wait, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	rng := rand.New(rand.NewSource(*seed))
	edges := func() []dsu.Edge {
		out := make([]dsu.Edge, *m)
		for i := range out {
			out[i] = dsu.Edge{X: uint32(rng.Intn(*n)), Y: uint32(rng.Intn(*n))}
		}
		return out
	}
	alphaEdges, betaEdges := edges(), edges()

	// Two isolated tenants, two structure kinds, one API.
	for _, spec := range []server.TenantSpec{
		{Name: "alpha", N: *n},
		{Name: "beta", N: *n, Shards: *shards, Find: "auto"},
	} {
		info, err := c.CreateTenant(ctx, spec)
		if err != nil {
			log.Fatalf("create %s: %v", spec.Name, err)
		}
		log.Printf("tenant %-5s  kind=%-7s shards=%d adaptive=%-5v n=%d", info.Name, info.Kind, info.Shards, info.Adaptive, info.N)
	}

	// Alpha: streaming ingest over the binary framing, watching per-batch
	// replies arrive as the server executes.
	var batches int
	cs, err := c.OpenStream(ctx, "alpha", server.StreamConfig{Buffer: *buffer, InFlight: 2, OnReply: func(env *wire.Envelope) {
		if env.Kind == wire.KindReply {
			batches++
		} else {
			log.Fatalf("stream batch %d failed: %s", env.Seq, env.Error)
		}
	}})
	if err != nil {
		log.Fatalf("open stream: %v", err)
	}
	start := time.Now()
	const chunk = 1000
	for i := 0; i < len(alphaEdges); i += chunk {
		hi := i + chunk
		if hi > len(alphaEdges) {
			hi = len(alphaEdges)
		}
		if err := cs.Push(alphaEdges[i:hi]...); err != nil {
			log.Fatalf("push: %v", err)
		}
	}
	end, err := cs.Close()
	if err != nil {
		log.Fatalf("stream close: %v", err)
	}
	log.Printf("alpha  stream: %d edges in %d batches, %d merged, %v (%d replies seen)",
		end.Edges, end.Batches, end.Merged, time.Since(start).Round(time.Millisecond), batches)

	// Beta: batch RPC in the JSON debug mode, prefiltered.
	jc := server.NewClient(*addr, server.WithFormat(wire.JSON))
	start = time.Now()
	var betaMerged int64
	for i := 0; i < len(betaEdges); i += 8192 {
		hi := i + 8192
		if hi > len(betaEdges) {
			hi = len(betaEdges)
		}
		rep, err := jc.UniteAll(ctx, "beta", dsu.UniteRequest{Edges: betaEdges[i:hi], Options: dsu.BatchOptions{Prefilter: true}})
		if err != nil {
			log.Fatalf("beta unite: %v", err)
		}
		betaMerged += rep.Merged
	}
	log.Printf("beta   rpc(json): %d edges, %d merged, %v", len(betaEdges), betaMerged, time.Since(start).Round(time.Millisecond))

	// Oracles: the same edges through the in-process API.
	alphaOracle := dsu.New(*n)
	alphaOracle.UniteAll(alphaEdges)
	betaOracle := dsu.NewSharded(*n, *shards, dsu.WithAdaptiveFind())
	betaOracle.UniteAll(betaEdges)

	fail := 0
	check := func(name string, ok bool, msg string) {
		if !ok {
			fail++
			log.Printf("MISMATCH %s: %s", name, msg)
		}
	}

	// Remote query batches vs oracle answers.
	for _, tc := range []struct {
		name   string
		edges  []dsu.Edge
		oracle dsu.Backend
	}{
		{"alpha", alphaEdges, alphaOracle},
		{"beta", betaEdges, betaOracle},
	} {
		pairs := make([]dsu.Edge, *queries)
		for i := range pairs {
			pairs[i] = dsu.Edge{X: uint32(rng.Intn(*n)), Y: uint32(rng.Intn(*n))}
		}
		rep, err := c.SameSetAll(ctx, tc.name, dsu.QueryRequest{Pairs: pairs})
		if err != nil {
			log.Fatalf("%s query: %v", tc.name, err)
		}
		check(tc.name, reflect.DeepEqual(rep.Answers, tc.oracle.SameSetAll(pairs)), "remote answers differ from in-process oracle")

		labels, err := c.Labels(ctx, tc.name)
		if err != nil {
			log.Fatalf("%s labels: %v", tc.name, err)
		}
		check(tc.name, reflect.DeepEqual(labels, tc.oracle.CanonicalLabels()), "remote partition differs from in-process oracle")

		info, err := c.Tenant(ctx, tc.name)
		if err != nil {
			log.Fatalf("%s info: %v", tc.name, err)
		}
		check(tc.name, info.Sets == tc.oracle.Sets(), fmt.Sprintf("remote sets %d, oracle %d", info.Sets, tc.oracle.Sets()))
		log.Printf("%-6s validated: %d sets, %d remote queries ≡ oracle", tc.name, info.Sets, *queries)
	}

	if fail > 0 {
		log.Printf("FAILED: %d mismatches", fail)
		os.Exit(1)
	}
	log.Printf("OK: both tenants match their in-process oracles over the wire")
}
