// Streaming computes connected components over a streamed edge list using
// the asynchronous ingestion front: edges arrive in small chunks (as they
// would from a network tap, a log shard, or a graph loader) and are pushed
// into a dsu.Stream, which accumulates them into double-buffered batches
// and drives each sealed batch through UniteAll while the next one fills —
// the caller never blocks per batch, per-batch results arrive through a
// completion callback, and Close drains everything. This is the overlap
// Alistarh et al. (2019) identify as the throughput lever: keep the
// structure's workers fed while ingestion keeps running.
//
// The backend is the flat DSU by default; -shards selects the sharded
// structure to show the stream front is backend-agnostic. The final
// partition is validated against an exact sequential BFS.
//
// -adaptive turns on the adaptive compaction policy (dsu.WithAdaptiveFind):
// the stream's batches train the flatness estimator, and any query batches
// issued against the backend downgrade their find variant while the forest
// is flat. The partition is identical either way.
//
//	go run ./examples/streaming [-n 1000000] [-m 4000000] [-buffer 65536] \
//	    [-inflight 1] [-workers 0] [-shards 0] [-connected] [-adaptive] [-chunk 8192]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/dsu"
	"repro/internal/graph"
)

func main() {
	var (
		n         = flag.Int("n", 1_000_000, "vertices")
		m         = flag.Int("m", 4_000_000, "streamed edges")
		buffer    = flag.Int("buffer", 1<<16, "edges per sealed batch (stream buffer size)")
		inflight  = flag.Int("inflight", 1, "bounded in-flight batches (1 = double buffering)")
		workers   = flag.Int("workers", 0, "pool size per batch (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "shard count for the backend (0 = flat DSU)")
		connected = flag.Bool("connected", false, "screen already-connected edges before each batch")
		adaptive  = flag.Bool("adaptive", false, "adaptive find-variant policy (dsu.WithAdaptiveFind)")
		chunk     = flag.Int("chunk", 8192, "arrival granularity (edges per Push)")
	)
	flag.Parse()
	if *buffer <= 0 || *chunk <= 0 {
		fmt.Fprintln(os.Stderr, "streaming: -buffer and -chunk must be positive")
		os.Exit(1)
	}

	fmt.Printf("generating stream G(n=%d, m=%d)...\n", *n, *m)
	stream := graph.ErdosRenyi(*n, *m, 2026)

	pool := *workers
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	batchOpts := []dsu.BatchOption{dsu.WithWorkers(*workers)}
	if *connected {
		batchOpts = append(batchOpts, dsu.WithConnectedFilter())
	}

	structOpts := []dsu.Option{dsu.WithSeed(1)}
	mode := "two-try splitting"
	if *adaptive {
		structOpts = append(structOpts, dsu.WithAdaptiveFind())
		mode = "adaptive (auto)"
	}
	// The common Backend surface means the rest of the program does not
	// care which structure it got.
	var backend dsu.Backend
	if *shards > 0 {
		d := dsu.NewSharded(*n, *shards, structOpts...)
		backend = d
		fmt.Printf("backend: sharded DSU, %d shards, %s finds\n", d.Shards(), mode)
	} else {
		backend = dsu.New(*n, structOpts...)
		fmt.Printf("backend: flat DSU, %s finds\n", mode)
	}
	labels, sets := backend.CanonicalLabels, backend.Sets

	fmt.Printf("streaming in %d-edge arrivals, %d-edge buffers, %d in flight, %d workers...\n",
		*chunk, *buffer, *inflight, pool)
	s := dsu.NewStream(backend,
		dsu.WithBufferSize(*buffer),
		dsu.WithMaxInFlight(*inflight),
		dsu.WithBatchOptions(batchOpts...),
		dsu.WithOnBatch(func(r dsu.BatchResult) {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "batch %d failed: %v\n", r.ID, r.Err)
				os.Exit(1)
			}
		}))

	buf := make([]dsu.Edge, 0, *chunk)
	start := time.Now()
	for lo := 0; lo < len(stream); lo += *chunk {
		hi := min(lo+*chunk, len(stream))
		buf = buf[:0]
		for _, e := range stream[lo:hi] {
			buf = append(buf, dsu.Edge{X: e.U, Y: e.V})
		}
		if err := s.Push(buf...); err != nil {
			fmt.Fprintln(os.Stderr, "push:", err)
			os.Exit(1)
		}
	}
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	fmt.Printf("streamed %d edges in %d batches in %v (%.2f Medges/s)\n",
		s.Edges(), s.Batches(), elapsed.Round(time.Millisecond),
		float64(s.Edges())/elapsed.Seconds()/1e6)
	fmt.Printf("components: %d (merged %d, screened %d)\n", sets(), s.Merged(), s.Filtered())

	fmt.Println("validating against sequential BFS...")
	want := graph.RefComponents(*n, stream)
	got := labels()
	for v := range got {
		if got[v] != want[v] {
			fmt.Fprintf(os.Stderr, "MISMATCH at vertex %d: streamed label %d, BFS label %d\n",
				v, got[v], want[v])
			os.Exit(1)
		}
	}
	if *shards == 0 && *n > 0 && int(s.Merged()) != *n-sets() {
		// Flat merge counts are exact; sharded counts are structural and
		// may exceed the component drop (see the Sharded docs).
		fmt.Fprintf(os.Stderr, "MISMATCH: merged %d but components dropped by %d\n",
			s.Merged(), *n-sets())
		os.Exit(1)
	}
	fmt.Println("OK: streamed components match the exact reference.")

	// Query phase: answer the whole stream again as connectivity queries,
	// in a few SameSetAll batches. This is the phase the adaptive policy
	// (-adaptive) downgrades — the stream's batches trained the flatness
	// estimator, the forest is flat now, and with WithAdaptiveFind the
	// batches below run cheaper find variants (naive CASes nothing: watch
	// the CAS column drop to zero). Answers are validated against the BFS
	// labels either way.
	const queryBatches = 4
	queries := make([]dsu.Edge, len(stream))
	for i, e := range stream {
		queries[i] = dsu.Edge{X: e.U, Y: e.V}
	}
	qstart := time.Now()
	var qstats dsu.Stats
	for k := 0; k < queryBatches; k++ {
		answers := backend.SameSetAllCounted(queries, &qstats, dsu.WithWorkers(*workers))
		for i, e := range stream {
			if answers[i] != (want[e.U] == want[e.V]) {
				fmt.Fprintf(os.Stderr, "MISMATCH: query (%d,%d) answered %v, BFS says %v\n",
					e.U, e.V, answers[i], want[e.U] == want[e.V])
				os.Exit(1)
			}
		}
	}
	qelapsed := time.Since(qstart)
	fmt.Printf("query phase (%s finds): %d queries in %v (%.2f Mq/s, %d CAS attempts)\n",
		mode, queryBatches*len(stream), qelapsed.Round(time.Millisecond),
		float64(queryBatches*len(stream))/qelapsed.Seconds()/1e6, qstats.CASAttempts)
	fmt.Println("OK: query answers match the exact reference.")
}
