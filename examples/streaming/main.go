// Streaming computes connected components over a streamed edge list: edges
// arrive in fixed-size batches (as they would from a network tap, a log
// shard, or a graph loader) and each batch is driven through the DSU's
// batched UniteAll, which fans it out over a work-stealing worker pool.
// This is the bulk-ingest shape of the paper's first motivating application
// (incremental connected components), and the interface Fedorov et al.
// (SPAA 2023) argue is the natural one for parallel union-find.
//
// The final partition is validated against an exact sequential BFS.
//
//	go run ./examples/streaming [-n 1000000] [-m 4000000] [-batch 65536] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/dsu"
	"repro/internal/graph"
)

func main() {
	var (
		n       = flag.Int("n", 1_000_000, "vertices")
		m       = flag.Int("m", 4_000_000, "streamed edges")
		batch   = flag.Int("batch", 1<<16, "edges per arriving batch")
		workers = flag.Int("workers", 0, "pool size per batch (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *batch <= 0 {
		fmt.Fprintln(os.Stderr, "streaming: -batch must be positive")
		os.Exit(1)
	}

	fmt.Printf("generating stream G(n=%d, m=%d)...\n", *n, *m)
	stream := graph.ErdosRenyi(*n, *m, 2026)

	pool := *workers
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("ingesting in batches of %d with %d workers...\n", *batch, pool)
	d := dsu.New(*n, dsu.WithSeed(1))
	buf := make([]dsu.Edge, 0, *batch)
	merged, batches := 0, 0
	start := time.Now()
	for lo := 0; lo < len(stream); lo += *batch {
		hi := min(lo+*batch, len(stream))
		buf = buf[:0]
		for _, e := range stream[lo:hi] {
			buf = append(buf, dsu.Edge{X: e.U, Y: e.V})
		}
		merged += d.UniteAll(buf, dsu.WithWorkers(*workers))
		batches++
	}
	elapsed := time.Since(start)

	fmt.Printf("ingested %d edges in %d batches in %v (%.2f Medges/s)\n",
		*m, batches, elapsed.Round(time.Millisecond),
		float64(*m)/elapsed.Seconds()/1e6)
	fmt.Printf("components: %d (merged %d edges)\n", d.Sets(), merged)

	fmt.Println("validating against sequential BFS...")
	want := graph.RefComponents(*n, stream)
	got := d.CanonicalLabels()
	for v := range got {
		if got[v] != want[v] {
			fmt.Fprintf(os.Stderr, "MISMATCH at vertex %d: streamed label %d, BFS label %d\n",
				v, got[v], want[v])
			os.Exit(1)
		}
	}
	if *n > 0 && merged != *n-d.Sets() {
		fmt.Fprintf(os.Stderr, "MISMATCH: merged %d but components dropped by %d\n",
			merged, *n-d.Sets())
		os.Exit(1)
	}
	fmt.Println("OK: streamed components match the exact reference.")
}
