// Percolation estimates the bond-percolation threshold of the 2-D square
// lattice (exactly 1/2 in the infinite limit) by Monte-Carlo: for each edge
// probability q, keep each lattice bond with probability q and test whether
// an open path connects the top row to the bottom row. Union-find is the
// classic algorithm for this (Sedgewick & Wayne), cited by the paper as a
// motivating application; trials run concurrently.
//
//	go run ./examples/percolation [-size 256] [-trials 32] [-workers 8]
package main

import (
	"flag"
	"fmt"
	"runtime"

	"repro/internal/apps"
)

func main() {
	var (
		size    = flag.Int("size", 256, "grid side length")
		trials  = flag.Int("trials", 32, "Monte-Carlo trials per probability")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent workers")
	)
	flag.Parse()

	fmt.Printf("bond percolation on %d×%d grid, %d trials/point, %d workers\n",
		*size, *size, *trials, *workers)
	fmt.Printf("%8s  %12s\n", "q", "P(percolate)")

	crossing := -1.0
	prevQ, prevP := 0.0, 0.0
	for _, q := range []float64{0.40, 0.44, 0.46, 0.48, 0.50, 0.52, 0.54, 0.56, 0.60} {
		prob := apps.PercolationPoint(*size, *trials, *workers, q, 12345)
		fmt.Printf("%8.2f  %12.3f\n", q, prob)
		if crossing < 0 && prob >= 0.5 {
			crossing = q
			if prob > prevP && prevP < 0.5 && prevQ > 0 {
				// Linear interpolation of the 50% crossing.
				crossing = prevQ + (q-prevQ)*(0.5-prevP)/(prob-prevP)
			}
		}
		prevQ, prevP = q, prob
	}
	fmt.Printf("\nestimated threshold q_c ≈ %.3f (exact infinite-lattice value: 0.500)\n", crossing)
}
