// Quickstart: the essential dsu API in one file.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"repro/dsu"
)

func main() {
	// A fixed universe of 10 elements, each in its own set.
	d := dsu.New(10)

	// Merge some sets and query membership.
	d.Unite(0, 1)
	d.Unite(1, 2)
	fmt.Println("0 ~ 2?", d.SameSet(0, 2)) // true, via transitivity
	fmt.Println("0 ~ 9?", d.SameSet(0, 9)) // false
	fmt.Println("sets:", d.Sets())         // 8

	// Everything is safe to call from any number of goroutines — no locks.
	var wg sync.WaitGroup
	edges := [][2]uint32{{3, 4}, {4, 5}, {6, 7}, {7, 8}, {8, 9}}
	for _, e := range edges {
		wg.Add(1)
		go func(a, b uint32) {
			defer wg.Done()
			d.Unite(a, b)
		}(e[0], e[1])
	}
	wg.Wait()
	fmt.Println("3 ~ 5?", d.SameSet(3, 5)) // true
	fmt.Println("6 ~ 9?", d.SameSet(6, 9)) // true
	fmt.Println("sets:", d.Sets())         // 3: {0,1,2} {3,4,5} {6,7,8,9}

	// Variants from the paper are options; work counters show the cost.
	d2 := dsu.New(1000, dsu.WithFind(dsu.OneTrySplitting), dsu.WithSeed(42))
	var st dsu.Stats
	for i := uint32(0); i < 999; i++ {
		d2.UniteCounted(i, i+1, &st)
	}
	fmt.Printf("999 unions: %d parent reads, %d CAS, %d links\n",
		st.Reads, st.CASAttempts, st.Links)

	// Need elements created on line? Use the Dynamic variant.
	dyn := dsu.NewDynamic(100)
	a, _ := dyn.MakeSet()
	b, _ := dyn.MakeSet()
	dyn.Unite(a, b)
	fmt.Println("dynamic a ~ b?", dyn.SameSet(a, b)) // true
}
