// Package repro is a production-quality Go reproduction of Jayanti &
// Tarjan, "A Randomized Concurrent Algorithm for Disjoint Set Union"
// (PODC 2016; revised as arXiv:1612.01514).
//
// The public library lives in repro/dsu: point operations (Unite, SameSet,
// Find), batched bulk operations (UniteAll, SameSetAll) that fan an edge
// list out over a work-stealing worker pool, a sharded structure
// (Sharded) that partitions the universe across per-shard engines with
// cross-shard reconciliation, a streaming ingestion front (Stream)
// that overlaps batch accumulation with execution behind backpressure and
// per-batch completion callbacks, and an adaptive compaction mode
// (WithAdaptiveFind) that downgrades query batches to cheaper find
// variants while the forest is flat. Flat and sharded structures share
// one Backend surface, and every batch path — blocking, streamed,
// filtered — drives one unified execution seam per structure.
//
// The client-facing surface is the tenant-scoped Universe API: a Registry
// of named, isolated universes (one structure each, kind chosen per
// tenant via the option vocabulary) whose batch methods speak plain
// request/response DTOs (UniteRequest, QueryRequest, BatchReply) shared
// verbatim by in-process callers and the network front end —
// cmd/dsuserve serves universes over HTTP with length-prefixed binary
// batch framing (JSON debug mode included), streaming ingestion with
// end-to-end backpressure, and per-tenant in-flight bounds. An opt-in
// observability layer (dsu.Metrics, dsuserve's -metrics/-pprof flags)
// exposes per-tenant Prometheus series fed from the same execution-seam
// accounting the batch replies carry, plus server request/traffic
// metrics, at zero hot-path cost when disabled.
//
// The substrates — the APRAM simulator, sequential baselines, the
// Anderson–Woll comparator, the linearizability checker, workload
// generators, the batch engine, the execution layer, the sharded
// subsystem, the ingestion pipeline, the wire codec, the HTTP server, and
// the experiment harness — live under internal/. See README.md for the
// map, DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate one measurement per experiment; cmd/dsubench
// prints the full tables.
package repro
